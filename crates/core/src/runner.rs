//! The CoCoA simulation runner: wires robots, radios, the medium, the
//! mesh, the coordination timeline and the metrics into one deterministic
//! discrete-event run.
//!
//! This module is the equivalent of the paper's Glomosim experiment
//! scripts: it realizes the timeline of Fig. 2 (beacon periods `T`,
//! transmit windows `t`, `k` beacons, radios sleeping in between) and the
//! SYNC dissemination of Fig. 3, and produces the error/energy metrics of
//! Section 4.

use bytes::Bytes;
use cocoa_localization::bayes::{radial_constraints_for_grid, ObservationResult};
use cocoa_localization::estimator::{EstimatorMode, WindowOutcome, WindowedRfEstimator};
use cocoa_localization::grid::GridConfig;
use cocoa_mobility::motion::RobotMotion;
use cocoa_mobility::pose::{normalize_angle, Pose};
use cocoa_mobility::waypoint::WaypointConfig;
use cocoa_multicast::odmrp::{OdmrpNode, ProtocolAction};
use cocoa_net::calibration::{calibrate, CalibrationConfig, PdfTable, RadialConstraintTable};
use cocoa_net::channel::RfChannel;
use cocoa_net::energy::PowerState;
use cocoa_net::geometry::Point;
use cocoa_net::mac::{Medium, ReceptionOutcome, TxId};
use cocoa_net::packet::{GroupId, NodeId, Packet, Payload};
use cocoa_net::radio::Radio;
use cocoa_sim::dist::uniform;
use cocoa_sim::engine::Engine;
use cocoa_sim::faults::{garble_bytes, Fault, GilbertElliottLink};
use cocoa_sim::rng::{DetRng, SeedSplitter};
use cocoa_sim::telemetry::{SpanId, Telemetry, TelemetryEvent};
use cocoa_sim::time::{SimDuration, SimTime};
use cocoa_sim::trace::{Trace, TraceLevel};

use crate::health::{DegradationState, HealthMonitor};
use crate::metrics::{
    EnergyReport, ErrorPoint, ErrorSnapshot, RobustnessStats, RunMetrics, TrafficStats,
};
use crate::robot::{FixAnchor, Robot};
use crate::scenario::Scenario;
use crate::sync::{DriftingClock, SyncMessage};

/// The multicast group every robot joins for SYNC delivery.
const SYNC_GROUP: GroupId = GroupId(1);

/// Offset of the JOIN QUERY flood from the window start.
const QUERY_OFFSET: SimDuration = SimDuration::from_millis(5);
/// Offset of the SYNC data from the window start (lets the mesh form:
/// query flood + jittered rebroadcasts + aggregated replies take a few
/// hundred milliseconds).
const SYNC_OFFSET: SimDuration = SimDuration::from_millis(600);
/// Beacons start this far into the window, clear of the mesh-control burst.
const BEACON_LEAD_IN: SimDuration = SimDuration::from_millis(700);

/// What a deferred transmission should put on the air.
#[derive(Debug, Clone)]
enum TxIntent {
    /// A localization beacon; the position is read at fire time.
    Beacon,
    /// A mesh packet built earlier (query/reply/data).
    Mesh(Packet),
}

#[derive(Debug, Clone)]
enum Event {
    /// Advance all robots' motion by one tick.
    MoveTick,
    /// Sample the error series.
    MetricsSample,
    /// Global window start (the Sync robot's reference timeline).
    WindowStart { index: u64 },
    /// A robot's local wake-up for a window. `epoch` ties the event to one
    /// life of the robot: a crash bumps the epoch, orphaning the pending
    /// wake chain of the previous life.
    RobotWake {
        robot: usize,
        window: u64,
        epoch: u32,
    },
    /// A robot's local end-of-window processing (then sleep).
    RobotWindowEnd {
        robot: usize,
        window: u64,
        epoch: u32,
    },
    /// A deferred transmission fires.
    Transmit { robot: usize, intent: TxIntent },
    /// A frame's airtime ends; judge receptions.
    TxEnd { tx: TxId, receivers: Vec<usize> },
    /// A member's deferred JOIN REPLY.
    MeshReply { robot: usize, source: NodeId },
    /// A node's deferred JOIN QUERY rebroadcast decision.
    MeshRebroadcast {
        robot: usize,
        source: NodeId,
        seq: u32,
    },
    /// Reclaim old frames from the medium.
    MediumGc,
    /// Record a per-robot error snapshot (Fig. 8 CDFs).
    Snapshot { index: usize },
    /// An injected fault fires (from the scenario's `FaultPlan`).
    Fault(Fault),
}

/// Pre-registered span handles, so hot paths never look a span up by name.
/// `run.*` spans tile the whole run; `event.*` spans tile the event loop by
/// category; the rest are nested subsystem spans.
#[derive(Clone, Copy)]
struct SpanIds {
    run_total: SpanId,
    run_calibrate: SpanId,
    run_setup: SpanId,
    run_event_loop: SpanId,
    run_finalize: SpanId,
    event_move_tick: SpanId,
    event_metrics_sample: SpanId,
    event_snapshot: SpanId,
    event_window_start: SpanId,
    event_robot_wake: SpanId,
    event_robot_window_end: SpanId,
    event_transmit: SpanId,
    event_tx_end: SpanId,
    event_mesh_reply: SpanId,
    event_mesh_rebroadcast: SpanId,
    event_medium_gc: SpanId,
    event_fault: SpanId,
    grid_update: SpanId,
    grid_fix: SpanId,
    channel_sample: SpanId,
    mesh_handle: SpanId,
    mobility_step: SpanId,
}

impl SpanIds {
    fn register(t: &mut Telemetry) -> SpanIds {
        SpanIds {
            run_total: t.span_id("run.total"),
            run_calibrate: t.span_id("run.calibrate"),
            run_setup: t.span_id("run.setup"),
            run_event_loop: t.span_id("run.event_loop"),
            run_finalize: t.span_id("run.finalize"),
            event_move_tick: t.span_id("event.move_tick"),
            event_metrics_sample: t.span_id("event.metrics_sample"),
            event_snapshot: t.span_id("event.snapshot"),
            event_window_start: t.span_id("event.window_start"),
            event_robot_wake: t.span_id("event.robot_wake"),
            event_robot_window_end: t.span_id("event.robot_window_end"),
            event_transmit: t.span_id("event.transmit"),
            event_tx_end: t.span_id("event.tx_end"),
            event_mesh_reply: t.span_id("event.mesh_reply"),
            event_mesh_rebroadcast: t.span_id("event.mesh_rebroadcast"),
            event_medium_gc: t.span_id("event.medium_gc"),
            event_fault: t.span_id("event.fault"),
            grid_update: t.span_id("grid.update"),
            grid_fix: t.span_id("grid.fix"),
            channel_sample: t.span_id("channel.sample"),
            mesh_handle: t.span_id("mesh.handle"),
            mobility_step: t.span_id("mobility.step"),
        }
    }

    fn for_event(&self, event: &Event) -> SpanId {
        match event {
            Event::MoveTick => self.event_move_tick,
            Event::MetricsSample => self.event_metrics_sample,
            Event::Snapshot { .. } => self.event_snapshot,
            Event::WindowStart { .. } => self.event_window_start,
            Event::RobotWake { .. } => self.event_robot_wake,
            Event::RobotWindowEnd { .. } => self.event_robot_window_end,
            Event::Transmit { .. } => self.event_transmit,
            Event::TxEnd { .. } => self.event_tx_end,
            Event::MeshReply { .. } => self.event_mesh_reply,
            Event::MeshRebroadcast { .. } => self.event_mesh_rebroadcast,
            Event::MediumGc => self.event_medium_gc,
            Event::Fault(_) => self.event_fault,
        }
    }
}

/// Stable telemetry name of an injected fault.
fn fault_kind(fault: &Fault) -> &'static str {
    match fault {
        Fault::Crash { .. } => "crash",
        Fault::Reboot { .. } => "reboot",
        Fault::ClockSkewStep { .. } => "clock_skew_step",
        Fault::GarbleTxStart { .. } => "garble_tx_start",
        Fault::GarbleTxEnd { .. } => "garble_tx_end",
        Fault::BeaconOffsetStart { .. } => "beacon_offset_start",
        Fault::BeaconOffsetEnd { .. } => "beacon_offset_end",
        Fault::BurstLossStart { .. } => "burst_loss_start",
        Fault::BurstLossEnd => "burst_loss_end",
    }
}

struct World {
    scenario: Scenario,
    channel: RfChannel,
    table: PdfTable,
    /// Pre-sampled radial constraint profiles (one per calibrated RSSI
    /// bin, floor baked in), shared by every robot's Bayesian update.
    radial: RadialConstraintTable,
    medium: Medium,
    robots: Vec<Robot>,
    move_rngs: Vec<DetRng>,
    odo_rngs: Vec<DetRng>,
    channel_rng: DetRng,
    jitter_rng: DetRng,
    // Metric accumulators.
    error_series: Vec<ErrorPoint>,
    snapshots: Vec<ErrorSnapshot>,
    position_snapshots: Vec<(SimTime, Vec<crate::metrics::RobotFinalState>)>,
    traffic: TrafficStats,
    sync_robot: usize,
    max_guard: SimDuration,
    telemetry: Telemetry,
    spans: SpanIds,
    /// Next sim time at which per-robot timeline samples are due.
    next_robot_sample: Option<SimTime>,
    // Fault-injection state.
    fault_rng: DetRng,
    /// Per-receiver Gilbert–Elliott link state while a burst-loss overlay
    /// is active.
    burst: Option<Vec<GilbertElliottLink>>,
    /// Transmissions whose garbled frame no longer decodes: receivers pay
    /// the reception energy, then drop the frame.
    corrupt_txs: std::collections::HashSet<TxId>,
    robustness: RobustnessStats,
    /// Consecutive beacon periods the Sync timebase has been silent.
    sync_dead_windows: u32,
}

impl World {
    fn mode(&self) -> EstimatorMode {
        self.scenario.mode
    }

    fn uses_rf(&self) -> bool {
        self.scenario.mode.uses_rf()
    }

    fn window_start_time(&self, index: u64) -> SimTime {
        SimTime::ZERO + self.scenario.beacon_period * index
    }

    /// Whether `robot` beacons during window `w` (equipped robots always,
    /// relayers when their fix is fresh enough).
    fn beacons_in_window(&self, robot: usize, window: u64) -> bool {
        let r = &self.robots[robot];
        if r.equipped {
            return true;
        }
        if !self.scenario.relay_beaconing || !r.has_fix {
            return false;
        }
        r.last_fix_window
            .is_some_and(|w| window.saturating_sub(w) <= self.scenario.relay_max_fix_age_windows)
    }
}

/// Runs `scenario` to completion and returns its metrics.
///
/// Deterministic: the same scenario (including seed) always produces the
/// same metrics, bit for bit.
///
/// # Panics
///
/// Panics if the scenario fails validation — construct it through
/// [`Scenario::builder`] to catch that earlier.
///
/// # Examples
///
/// ```no_run
/// use cocoa_core::runner::run;
/// use cocoa_core::scenario::Scenario;
///
/// let metrics = run(&Scenario::builder().build());
/// println!("mean error {:.1} m", metrics.mean_error_over_time());
/// ```
pub fn run(scenario: &Scenario) -> RunMetrics {
    run_with_telemetry(scenario, Telemetry::off()).0
}

/// Like [`run`], but records protocol milestones (window starts, fixes,
/// starved windows, lost syncs) into the supplied [`Trace`] and returns it
/// alongside the metrics. Use [`Trace::with_capacity`] to bound memory on
/// long runs.
///
/// The string trace is the legacy observability surface; it now rides on
/// the typed telemetry bus (see [`run_with_telemetry`]) as its legacy sink,
/// so existing callers keep working unchanged.
///
/// # Panics
///
/// Panics if the scenario fails validation.
pub fn run_traced(scenario: &Scenario, trace: Trace) -> (RunMetrics, Trace) {
    let mut telemetry = Telemetry::off();
    telemetry.attach_legacy(trace);
    let (metrics, mut telemetry) = run_with_telemetry(scenario, telemetry);
    let trace = telemetry
        .take_legacy()
        .expect("legacy trace survives the run");
    (metrics, trace)
}

/// Like [`run`], but records typed events, counters and span timings into
/// the supplied [`Telemetry`] bus and returns it alongside the metrics.
///
/// Telemetry is strictly an observer: for any fixed scenario the returned
/// [`RunMetrics`] are bit-identical whatever the bus level, and the
/// deterministic part of the trace ([`Telemetry::to_jsonl`] without spans)
/// is byte-identical across runs of the same seed.
///
/// # Panics
///
/// Panics if the scenario fails validation.
pub fn run_with_telemetry(
    scenario: &Scenario,
    mut telemetry: Telemetry,
) -> (RunMetrics, Telemetry) {
    let spans = SpanIds::register(&mut telemetry);
    let t_total = telemetry.span_start();
    let t_calibrate = telemetry.span_start();
    scenario
        .validate()
        .unwrap_or_else(|e| panic!("invalid scenario: {e}"));
    let split = SeedSplitter::new(scenario.seed);

    // --- Offline calibration phase (paper Section 2.2). ---
    let channel = RfChannel::new(scenario.channel);
    let table = calibrate(
        &channel,
        &CalibrationConfig::default(),
        &mut split.stream("calibration", 0),
    );
    // One radial constraint cache per run, shared by every robot.
    let radial = radial_constraints_for_grid(
        &table,
        &GridConfig::new(scenario.area, scenario.grid_resolution_m),
    );
    telemetry.span_end(spans.run_calibrate, t_calibrate);
    let t_setup = telemetry.span_start();

    // --- Team construction. ---
    let mut placement_rng = split.stream("placement", 0);
    let mut clock_rng = split.stream("clock", 0);
    let num_equipped = if scenario.mode.uses_rf() {
        scenario.num_equipped
    } else {
        0
    };
    let mut robots = Vec::with_capacity(scenario.num_robots);
    let mut move_rngs = Vec::with_capacity(scenario.num_robots);
    let mut odo_rngs = Vec::with_capacity(scenario.num_robots);
    for i in 0..scenario.num_robots {
        let start = Point::new(
            uniform(scenario.area.x_min, scenario.area.x_max, &mut placement_rng),
            uniform(scenario.area.y_min, scenario.area.y_max, &mut placement_rng),
        );
        let mut move_rng = split.stream("move", i as u64);
        let odo_rng = split.stream("odo", i as u64);
        let equipped = i < num_equipped;
        let skew = if i == 0 {
            0.0 // the Sync robot is the timebase
        } else {
            uniform(
                -scenario.clock_skew_ppm * 1e-6,
                scenario.clock_skew_ppm * 1e-6 + f64::EPSILON,
                &mut clock_rng,
            )
        };
        let motion = RobotMotion::new(
            WaypointConfig::paper(scenario.area, scenario.v_max),
            scenario.odometry,
            start,
            &mut move_rng,
        );
        let mut radio = Radio::new(scenario.energy, SimTime::ZERO);
        if !scenario.mode.uses_rf() {
            radio.set_state(SimTime::ZERO, PowerState::Off);
        }
        let rf = if !equipped && scenario.mode.uses_rf() {
            Some(WindowedRfEstimator::with_algorithm(
                GridConfig::new(scenario.area, scenario.grid_resolution_m),
                scenario.rf_algorithm,
            ))
        } else {
            None
        };
        // Equipped robots are healthy by construction; everyone else starts
        // dead-reckoning (no fix yet — the RF estimator has not run, and
        // odometry-only robots never get one).
        let initial_health = if equipped && scenario.mode.uses_rf() {
            DegradationState::Healthy
        } else {
            DegradationState::DeadReckoning
        };
        robots.push(Robot {
            id: NodeId(i as u32),
            index: i,
            equipped,
            motion,
            radio,
            rf,
            mesh: OdmrpNode::new(NodeId(i as u32), SYNC_GROUP, true, scenario.mesh),
            clock: DriftingClock::new(skew),
            has_fix: false,
            last_fix_window: None,
            synced_this_window: false,
            fix_anchor: None,
            alive: true,
            epoch: 0,
            garbled_tx: false,
            beacon_offset: None,
            health: HealthMonitor::new(initial_health, SimTime::ZERO),
        });
        move_rngs.push(move_rng);
        odo_rngs.push(odo_rng);
    }

    let max_guard = (scenario.beacon_period / 4).max(scenario.guard_band);
    let mut world = World {
        scenario: scenario.clone(),
        channel,
        table,
        radial,
        medium: Medium::new(),
        robots,
        move_rngs,
        odo_rngs,
        channel_rng: split.stream("channel", 0),
        jitter_rng: split.stream("jitter", 0),
        error_series: Vec::new(),
        snapshots: Vec::new(),
        position_snapshots: Vec::new(),
        traffic: TrafficStats::default(),
        sync_robot: 0,
        max_guard,
        telemetry,
        spans,
        next_robot_sample: None,
        fault_rng: split.stream("faults", 0),
        burst: None,
        corrupt_txs: std::collections::HashSet::new(),
        robustness: RobustnessStats::default(),
        sync_dead_windows: 0,
    };

    // --- Initial event schedule. ---
    let horizon = SimTime::ZERO + scenario.duration;
    let mut engine: Engine<Event> = Engine::new(horizon);
    engine.schedule_at(SimTime::ZERO + scenario.tick, Event::MoveTick);
    engine.schedule_at(
        SimTime::ZERO + scenario.metrics_interval,
        Event::MetricsSample,
    );
    if world.uses_rf() {
        engine.schedule_at(SimTime::ZERO, Event::WindowStart { index: 0 });
        for i in 0..world.robots.len() {
            engine.schedule_at(
                SimTime::ZERO,
                Event::RobotWake {
                    robot: i,
                    window: 0,
                    epoch: 0,
                },
            );
        }
        engine.schedule_at(SimTime::ZERO + SimDuration::from_secs(10), Event::MediumGc);
    }
    for e in scenario.faults.events() {
        if e.at <= horizon {
            engine.schedule_at(e.at, Event::Fault(e.fault.clone()));
        }
    }
    let mut snapshot_times = scenario.snapshot_times.clone();
    snapshot_times.sort();
    for (i, &t) in snapshot_times.iter().enumerate() {
        if t <= horizon {
            engine.schedule_at(t, Event::Snapshot { index: i });
        }
    }
    world.snapshots = snapshot_times
        .iter()
        .map(|&t| ErrorSnapshot::new(t, Vec::new()))
        .collect();
    world.telemetry.span_end(spans.run_setup, t_setup);

    // --- Run. ---
    let t_loop = world.telemetry.span_start();
    engine.run(&mut world, handle_event);
    world.telemetry.span_end(spans.run_event_loop, t_loop);

    // --- Finalize. ---
    let t_finalize = world.telemetry.span_start();
    let mut per_robot = Vec::with_capacity(world.robots.len());
    let mut mesh = cocoa_multicast::mesh::MeshStats::default();
    let mut final_states = Vec::with_capacity(world.robots.len());
    for r in &mut world.robots {
        per_robot.push(r.radio.finalize(horizon));
        mesh.merge(&r.mesh.stats());
    }
    for r in &world.robots {
        final_states.push(crate::metrics::RobotFinalState {
            true_position: r.motion.true_position(),
            estimate: r.estimate(world.scenario.mode, &world.scenario.area),
            equipped: r.equipped,
        });
    }
    world.traffic.collisions = world.medium.collisions();
    let health = world
        .robots
        .iter()
        .map(|r| r.health.finalize(horizon))
        .collect();

    // Absorb every subsystem's lifetime statistics into the unified
    // counter registry (no-op below `Counters`).
    if world.telemetry.wants_counters() {
        let t = &mut world.telemetry;
        let tr = &world.traffic;
        t.absorb("traffic.beacons_sent", tr.beacons_sent);
        t.absorb("traffic.beacons_received", tr.beacons_received);
        t.absorb("traffic.collisions", tr.collisions);
        t.absorb("traffic.syncs_delivered", tr.syncs_delivered);
        t.absorb("traffic.syncs_missed", tr.syncs_missed);
        t.absorb("traffic.fixes", tr.fixes);
        t.absorb("traffic.starved_windows", tr.starved_windows);
        let ro = &world.robustness;
        t.absorb("robustness.crashes", ro.crashes);
        t.absorb("robustness.reboots", ro.reboots);
        t.absorb("robustness.failovers", ro.failovers);
        t.absorb("robustness.burst_losses", ro.burst_losses);
        t.absorb(
            "robustness.corrupt_frames_dropped",
            ro.corrupt_frames_dropped,
        );
        t.absorb(
            "robustness.garbled_frames_delivered",
            ro.garbled_frames_delivered,
        );
        t.absorb(
            "robustness.outlier_beacons_rejected",
            ro.outlier_beacons_rejected,
        );
        t.absorb("robustness.flat_posteriors", ro.flat_posteriors);
        t.absorb("robustness.stale_syncs_ignored", ro.stale_syncs_ignored);
        t.absorb("robustness.malformed_sync_bodies", ro.malformed_sync_bodies);
        t.absorb("mesh.queries_originated", mesh.queries_originated);
        t.absorb("mesh.queries_rebroadcast", mesh.queries_rebroadcast);
        t.absorb("mesh.queries_suppressed", mesh.queries_suppressed);
        t.absorb("mesh.replies_sent", mesh.replies_sent);
        t.absorb("mesh.fg_activations", mesh.fg_activations);
        t.absorb("mesh.data_originated", mesh.data_originated);
        t.absorb("mesh.data_forwarded", mesh.data_forwarded);
        t.absorb("mesh.data_delivered", mesh.data_delivered);
        t.absorb("mesh.data_duplicates", mesh.data_duplicates);
        t.absorb("mesh.data_undecodable", mesh.data_undecodable);
        t.absorb("mac.half_duplex", world.medium.half_duplex());
        t.absorb("engine.events_processed", engine.events_processed());
        t.absorb("engine.peak_pending", engine.peak_pending() as u64);
        let (mut wakes, mut sent, mut received) = (0u64, 0u64, 0u64);
        for r in &world.robots {
            wakes += u64::from(r.radio.wake_count());
            sent += u64::from(r.radio.packets_sent());
            received += u64::from(r.radio.packets_received());
        }
        t.absorb("radio.wakes", wakes);
        t.absorb("radio.packets_sent", sent);
        t.absorb("radio.packets_received", received);
        // The legacy string trace reports its ring-buffer drops here too,
        // so a bounded trace never evicts silently.
        if let Some(trace) = t.legacy_trace() {
            let (emitted, dropped) = (trace.emitted(), trace.dropped());
            t.absorb("trace.emitted", emitted);
            t.absorb("trace.dropped", dropped);
        }
        let (emitted, dropped) = (t.events_emitted(), t.dropped_events());
        t.absorb("telemetry.events_emitted", emitted);
        t.absorb("telemetry.events_dropped", dropped);
    }

    let metrics = RunMetrics {
        error_series: world.error_series,
        snapshots: world.snapshots,
        energy: EnergyReport { per_robot },
        mesh,
        traffic: world.traffic,
        final_states,
        position_snapshots: world.position_snapshots,
        robustness: world.robustness,
        health,
        events_processed: engine.events_processed(),
    };
    world.telemetry.span_end(spans.run_finalize, t_finalize);
    world.telemetry.span_end(spans.run_total, t_total);
    (metrics, world.telemetry)
}

fn handle_event(engine: &mut Engine<Event>, world: &mut World, event: Event) {
    // Attribute the wall-clock cost of every dispatch to its event
    // category; dispatch_event holds the actual logic so early returns
    // inside the arms cannot skip closing the span.
    let span = world.telemetry.span_start();
    let span_id = world.spans.for_event(&event);
    dispatch_event(engine, world, event);
    world.telemetry.span_end(span_id, span);
}

fn dispatch_event(engine: &mut Engine<Event>, world: &mut World, event: Event) {
    let now = engine.now();
    match event {
        Event::MoveTick => {
            let dt = world.scenario.tick.as_secs_f64();
            let sp = world.telemetry.span_start();
            for i in 0..world.robots.len() {
                let r = &mut world.robots[i];
                if !r.alive {
                    continue; // crashed robots stop where they are
                }
                r.motion
                    .step(dt, &mut world.move_rngs[i], &mut world.odo_rngs[i]);
            }
            world.telemetry.span_end(world.spans.mobility_step, sp);
            engine.schedule_in(world.scenario.tick, Event::MoveTick);
        }

        Event::MetricsSample => {
            let mode = world.mode();
            let area = world.scenario.area;
            let mut sum = 0.0;
            let mut n = 0usize;
            for r in &world.robots {
                if r.alive && r.reports_error(mode) {
                    sum += r.localization_error(mode, &area);
                    n += 1;
                }
            }
            if n > 0 {
                world.error_series.push(ErrorPoint {
                    t_s: now.as_secs_f64(),
                    mean_error_m: sum / n as f64,
                    robots: n,
                });
                // The team sample mirrors the error point exactly (same
                // expression, same operands) so traces reconstruct the
                // metrics curve bit-for-bit.
                if world.telemetry.wants_events() {
                    let energy_j: f64 = world
                        .robots
                        .iter()
                        .map(|r| r.radio.peek_ledger(now).total_j())
                        .sum();
                    world.telemetry.emit(
                        now,
                        TelemetryEvent::TeamSample {
                            mean_err_m: sum / n as f64,
                            robots: n as u32,
                            energy_j,
                        },
                    );
                }
            }
            // Per-robot timelines ride the metrics tick (no extra engine
            // events, so `events_processed` is telemetry-invariant) but
            // thin out to the configured sampling interval.
            if world.telemetry.wants_events() {
                let due = world.next_robot_sample.is_none_or(|t| now >= t);
                if due {
                    let interval = world
                        .telemetry
                        .sample_interval()
                        .unwrap_or(world.scenario.metrics_interval);
                    world.next_robot_sample = Some(now + interval);
                    for (i, r) in world.robots.iter().enumerate() {
                        let true_pos = r.motion.true_position();
                        let est = r.estimate(mode, &area);
                        world.telemetry.emit(
                            now,
                            TelemetryEvent::RobotSample {
                                robot: i as u32,
                                true_x_m: true_pos.x,
                                true_y_m: true_pos.y,
                                est_x_m: est.x,
                                est_y_m: est.y,
                                err_m: r.localization_error(mode, &area),
                                entropy_frac: r.rf.as_ref().and_then(|rf| rf.entropy_fraction()),
                                energy_j: r.radio.peek_ledger(now).total_j(),
                                radio: r.radio.state().as_str(),
                                health: r.health.state().as_str(),
                            },
                        );
                    }
                }
            }
            engine.schedule_in(world.scenario.metrics_interval, Event::MetricsSample);
        }

        Event::Snapshot { index } => {
            let mode = world.mode();
            let area = world.scenario.area;
            let errors: Vec<f64> = world
                .robots
                .iter()
                .filter(|r| r.alive && r.reports_error(mode))
                .map(|r| r.localization_error(mode, &area))
                .collect();
            let time = world.snapshots[index].time;
            world.snapshots[index] = ErrorSnapshot::new(time, errors);
            let states: Vec<crate::metrics::RobotFinalState> = world
                .robots
                .iter()
                .map(|r| crate::metrics::RobotFinalState {
                    true_position: r.motion.true_position(),
                    estimate: r.estimate(mode, &area),
                    equipped: r.equipped,
                })
                .collect();
            world.position_snapshots.push((time, states));
        }

        Event::WindowStart { index } => {
            world
                .telemetry
                .emit(now, TelemetryEvent::WindowStart { window: index });
            world
                .telemetry
                .legacy(now, TraceLevel::Info, "coordinator", || {
                    format!("beacon period {index} starts")
                });
            // Schedule the next period on the reference timeline.
            let next = world.window_start_time(index + 1);
            if next < engine.horizon() {
                engine.schedule_at(next, Event::WindowStart { index: index + 1 });
            }
            // The Sync robot refreshes the mesh and disseminates SYNC.
            if world.scenario.sync_enabled {
                // Failover: after K consecutive silent periods the team
                // deterministically elects a new timebase (first alive
                // equipped robot, else first alive robot). The runner
                // models the election centrally; every robot observes the
                // same K missed SYNCs, so a distributed election over the
                // mesh would pick the same winner.
                if world.robots[world.sync_robot].alive {
                    world.sync_dead_windows = 0;
                } else {
                    world.sync_dead_windows += 1;
                    if world.sync_dead_windows >= world.scenario.failover_missed_periods {
                        let elected = world
                            .robots
                            .iter()
                            .position(|r| r.alive && r.equipped)
                            .or_else(|| world.robots.iter().position(|r| r.alive));
                        if let Some(new_sync) = elected {
                            world.sync_robot = new_sync;
                            world.sync_dead_windows = 0;
                            world.robustness.failovers += 1;
                            world.telemetry.emit(
                                now,
                                TelemetryEvent::Failover {
                                    new_sync: new_sync as u32,
                                },
                            );
                            world.telemetry.legacy(now, TraceLevel::Info, "sync", || {
                                format!("failover: robot {new_sync} elected as timebase")
                            });
                        }
                    }
                }
                if !world.robots[world.sync_robot].alive {
                    return; // no live timebase yet; the period goes silent
                }
                let s = world.sync_robot;
                let mode = world.mode();
                let area = world.scenario.area;
                let info = world.robots[s].mobility_info(mode, &area);
                let query = world.robots[s].mesh.originate_query(now, &info);
                engine.schedule_in(
                    QUERY_OFFSET,
                    Event::Transmit {
                        robot: s,
                        intent: TxIntent::Mesh(query),
                    },
                );
                let sync = SyncMessage {
                    period_us: world.scenario.beacon_period.as_micros(),
                    window_us: world.scenario.transmit_window.as_micros(),
                    window_index: index,
                    window_start_us: now.as_micros(),
                };
                let data = world.robots[s].mesh.originate_data(now, sync.encode());
                engine.schedule_in(
                    SYNC_OFFSET,
                    Event::Transmit {
                        robot: s,
                        intent: TxIntent::Mesh(data),
                    },
                );
                // The Sync robot trivially hears its own schedule.
                world.robots[s].synced_this_window = true;
            }
        }

        Event::RobotWake {
            robot,
            window,
            epoch,
        } => {
            robot_wake(engine, world, robot, window, epoch, now);
        }

        Event::RobotWindowEnd {
            robot,
            window,
            epoch,
        } => {
            robot_window_end(engine, world, robot, window, epoch, now);
        }

        Event::Transmit { robot, intent } => {
            let packet = match intent {
                TxIntent::Beacon => {
                    let r = &world.robots[robot];
                    if !r.alive || !r.radio.can_receive() {
                        return; // drifted into sleep (or crashed); beacon lost
                    }
                    let mut pos = r.beacon_position(world.mode(), &world.scenario.area);
                    if let Some((dx, dy)) = r.beacon_offset {
                        // Faulty localization device: the robot honestly
                        // advertises a wrong position.
                        pos = Point::new(pos.x + dx, pos.y + dy);
                    }
                    world.traffic.beacons_sent += 1;
                    world.telemetry.emit_full(now, || TelemetryEvent::BeaconTx {
                        robot: robot as u32,
                        x_m: pos.x,
                        y_m: pos.y,
                    });
                    Packet::new(
                        r.id,
                        now.as_micros() as u32,
                        Payload::Beacon { position: pos },
                    )
                }
                TxIntent::Mesh(p) => {
                    let r = &world.robots[robot];
                    if !r.alive || !r.radio.can_receive() {
                        return;
                    }
                    p
                }
            };
            transmit(engine, world, robot, packet, now);
        }

        Event::TxEnd { tx, receivers } => {
            deliver(engine, world, tx, &receivers, now);
        }

        Event::MeshReply { robot, source } => {
            if !world.robots[robot].radio.can_receive() {
                return;
            }
            if let Some(packet) = world.robots[robot].mesh.make_reply(now, source) {
                transmit(engine, world, robot, packet, now);
            }
        }

        Event::MeshRebroadcast { robot, source, seq } => {
            if !world.robots[robot].radio.can_receive() {
                return;
            }
            let mode = world.mode();
            let area = world.scenario.area;
            let info = world.robots[robot].mobility_info(mode, &area);
            if let Some(packet) = world.robots[robot]
                .mesh
                .make_rebroadcast(now, source, seq, &info)
            {
                transmit(engine, world, robot, packet, now);
            }
        }

        Event::MediumGc => {
            world.medium.gc(now);
            engine.schedule_in(SimDuration::from_secs(10), Event::MediumGc);
        }

        Event::Fault(fault) => {
            apply_fault(engine, world, fault, now);
        }
    }
}

/// Applies one injected fault to the world at `now`.
fn apply_fault(engine: &mut Engine<Event>, world: &mut World, fault: Fault, now: SimTime) {
    world.telemetry.emit(
        now,
        TelemetryEvent::FaultInjected {
            kind: fault_kind(&fault),
            robot: fault.robot().map(|r| r as u32),
        },
    );
    match fault {
        Fault::Crash { robot } => {
            let r = &mut world.robots[robot];
            if !r.alive {
                return;
            }
            r.alive = false;
            // Orphan the pending wake chain of this life.
            r.epoch = r.epoch.wrapping_add(1);
            r.radio.set_state(now, PowerState::Off);
            world.telemetry.emit(
                now,
                TelemetryEvent::RadioState {
                    robot: robot as u32,
                    state: PowerState::Off.as_str(),
                },
            );
            if r.health.transition(now, DegradationState::Down) {
                world.telemetry.emit(
                    now,
                    TelemetryEvent::HealthTransition {
                        robot: robot as u32,
                        state: DegradationState::Down.as_str(),
                    },
                );
            }
            world.robustness.crashes += 1;
            world.telemetry.legacy(now, TraceLevel::Warn, "fault", || {
                format!("robot {robot} crashed")
            });
        }
        Fault::Reboot { robot } => {
            if world.robots[robot].alive {
                return;
            }
            let uses_rf = world.uses_rf();
            let area = world.scenario.area;
            let res = world.scenario.grid_resolution_m;
            let alg = world.scenario.rf_algorithm;
            let r = &mut world.robots[robot];
            r.alive = true;
            r.epoch = r.epoch.wrapping_add(1);
            // Volatile state is lost: the posterior, the fix history and
            // the heading anchor all restart from scratch.
            r.has_fix = false;
            r.last_fix_window = None;
            r.fix_anchor = None;
            r.synced_this_window = false;
            if let Some(rf) = r.rf.as_mut() {
                *rf = WindowedRfEstimator::with_algorithm(GridConfig::new(area, res), alg);
            }
            let up_state = if uses_rf {
                PowerState::Idle
            } else {
                PowerState::Off
            };
            r.radio.set_state(now, up_state);
            world.telemetry.emit(
                now,
                TelemetryEvent::RadioState {
                    robot: robot as u32,
                    state: up_state.as_str(),
                },
            );
            let back = if r.equipped && uses_rf {
                DegradationState::Healthy
            } else {
                DegradationState::DeadReckoning
            };
            if r.health.transition(now, back) {
                world.telemetry.emit(
                    now,
                    TelemetryEvent::HealthTransition {
                        robot: robot as u32,
                        state: back.as_str(),
                    },
                );
            }
            world.robustness.reboots += 1;
            world.telemetry.legacy(now, TraceLevel::Info, "fault", || {
                format!("robot {robot} rebooted")
            });
            // Rejoin the window cycle at the next period boundary.
            if uses_rf {
                let period = world.scenario.beacon_period;
                let next_window = now.saturating_since(SimTime::ZERO).div_duration(period) + 1;
                let at = world.window_start_time(next_window);
                if at < engine.horizon() {
                    let epoch = world.robots[robot].epoch;
                    engine.schedule_at(
                        at,
                        Event::RobotWake {
                            robot,
                            window: next_window,
                            epoch,
                        },
                    );
                }
            }
        }
        Fault::ClockSkewStep { robot, delta_ppm } => {
            world.robots[robot].clock.apply_skew_step(delta_ppm, now);
            world.telemetry.legacy(now, TraceLevel::Warn, "fault", || {
                format!("robot {robot} clock skew stepped by {delta_ppm} ppm")
            });
        }
        Fault::GarbleTxStart { robot } => world.robots[robot].garbled_tx = true,
        Fault::GarbleTxEnd { robot } => world.robots[robot].garbled_tx = false,
        Fault::BeaconOffsetStart { robot, dx_m, dy_m } => {
            world.robots[robot].beacon_offset = Some((dx_m, dy_m));
        }
        Fault::BeaconOffsetEnd { robot } => world.robots[robot].beacon_offset = None,
        Fault::BurstLossStart { model } => {
            // One independent link per receiver, all starting in the good
            // state.
            world.burst = Some(
                world
                    .robots
                    .iter()
                    .map(|_| GilbertElliottLink::new(model))
                    .collect(),
            );
            world.telemetry.legacy(now, TraceLevel::Warn, "fault", || {
                format!(
                    "burst-loss overlay on (mean loss {:.0}%)",
                    model.mean_loss() * 100.0
                )
            });
        }
        Fault::BurstLossEnd => world.burst = None,
    }
}

fn robot_wake(
    engine: &mut Engine<Event>,
    world: &mut World,
    robot: usize,
    window: u64,
    epoch: u32,
    now: SimTime,
) {
    if !world.robots[robot].alive || world.robots[robot].epoch != epoch {
        return; // stale wake from a life that ended in a crash
    }
    let window_start = world.window_start_time(window);
    let scenario_window = world.scenario.transmit_window;
    let beacons = world.beacons_in_window(robot, window);
    {
        let r = &mut world.robots[robot];
        let prev = r.radio.state();
        if world.scenario.coordination || prev != PowerState::Idle {
            r.radio.set_state(now, PowerState::Idle);
            if prev != PowerState::Idle {
                world.telemetry.emit(
                    now,
                    TelemetryEvent::RadioState {
                        robot: robot as u32,
                        state: PowerState::Idle.as_str(),
                    },
                );
            }
        }
        r.synced_this_window = robot == world.sync_robot && world.scenario.sync_enabled;
        if let Some(rf) = r.rf.as_mut() {
            rf.begin_window();
        }
    }
    // Schedule this robot's beacons, spread over the window with jitter.
    if beacons {
        let k = world.scenario.beacons_per_window;
        let usable = scenario_window - BEACON_LEAD_IN;
        let slot = usable / u64::from(k);
        for i in 0..k {
            let jitter = uniform(
                0.0,
                (slot.as_secs_f64() * 0.8).max(1e-4),
                &mut world.jitter_rng,
            );
            let intended = window_start
                + BEACON_LEAD_IN
                + slot * u64::from(i)
                + SimDuration::from_secs_f64(jitter);
            let fire = world.robots[robot].clock.actual_fire_time(intended, now);
            if fire < engine.horizon() {
                engine.schedule_at(
                    fire,
                    Event::Transmit {
                        robot,
                        intent: TxIntent::Beacon,
                    },
                );
            }
        }
    }
    // Schedule the end-of-window processing.
    let intended_end = window_start + scenario_window + world.scenario.guard_band;
    let fire = world.robots[robot]
        .clock
        .actual_fire_time(intended_end, now);
    if fire <= engine.horizon() {
        engine.schedule_at(
            fire,
            Event::RobotWindowEnd {
                robot,
                window,
                epoch,
            },
        );
    } else {
        // The run ends mid-window; the finalizer will checkpoint energy.
    }
}

fn robot_window_end(
    engine: &mut Engine<Event>,
    world: &mut World,
    robot: usize,
    window: u64,
    epoch: u32,
    now: SimTime,
) {
    if !world.robots[robot].alive || world.robots[robot].epoch != epoch {
        return; // stale window-end from a life that ended in a crash
    }
    let mode = world.mode();
    let watchdog = world.scenario.entropy_watchdog_frac;
    {
        let r = &mut world.robots[robot];
        // Close the RF window and process the fix.
        if let Some(rf) = r.rf.as_mut() {
            let had_window = rf.in_window();
            let sp = world.telemetry.span_start();
            let outcome = rf.end_window_guarded(watchdog);
            world.telemetry.span_end(world.spans.grid_fix, sp);
            match outcome {
                WindowOutcome::Fix(fix) => {
                    r.has_fix = true;
                    r.last_fix_window = Some(window);
                    world.traffic.fixes += 1;
                    world.telemetry.emit(
                        now,
                        TelemetryEvent::Fix {
                            robot: robot as u32,
                            window,
                            x_m: fix.x,
                            y_m: fix.y,
                            err_m: r.motion.true_position().distance_to(fix),
                        },
                    );
                    world
                        .telemetry
                        .legacy(now, TraceLevel::Debug, "localization", || {
                            format!("robot {} fixed at {} in window {window}", robot, fix)
                        });
                    if mode == EstimatorMode::Cocoa {
                        // RF fixes position; heading is re-anchored from the
                        // displacement observed between consecutive fixes.
                        let odo_pose = r.motion.odometry_pose();
                        let mut heading = odo_pose.heading;
                        if let Some(anchor) = r.fix_anchor {
                            let d_fix = fix - anchor.fix;
                            let d_odo = odo_pose.position - anchor.odo_at_fix;
                            // Short displacements make the bearing comparison
                            // noisier than the heading error it would fix.
                            if d_fix.norm() > 10.0 && d_odo.norm() > 10.0 {
                                heading -= normalize_angle(d_odo.angle() - d_fix.angle());
                            }
                        }
                        r.fix_anchor = Some(FixAnchor {
                            fix,
                            odo_at_fix: odo_pose.position,
                        });
                        r.motion.reset_odometry_to(Pose::new(fix, heading));
                    }
                }
                WindowOutcome::FlatPosterior { entropy, threshold } => {
                    // The entropy watchdog vetoed a near-uniform posterior:
                    // the robot keeps dead-reckoning from its previous fix
                    // rather than jumping to an uninformative centroid.
                    world.robustness.flat_posteriors += 1;
                    world.telemetry.emit(
                        now,
                        TelemetryEvent::FlatPosterior {
                            robot: robot as u32,
                            window,
                            entropy,
                            threshold,
                        },
                    );
                    world
                        .telemetry
                        .legacy(now, TraceLevel::Warn, "localization", || {
                            format!(
                                "robot {robot} posterior too flat in window {window} \
                                 (entropy {entropy:.2} > {threshold:.2}); keeping estimate"
                            )
                        });
                }
                WindowOutcome::NoFix => {
                    if had_window {
                        // Fewer than the minimum beacons arrived: the robot
                        // keeps its previous estimate (paper Section 2.3).
                        world.traffic.starved_windows += 1;
                        world.telemetry.emit(
                            now,
                            TelemetryEvent::StarvedWindow {
                                robot: robot as u32,
                                window,
                            },
                        );
                        world
                            .telemetry
                            .legacy(now, TraceLevel::Warn, "localization", || {
                                format!("robot {robot} starved in window {window}")
                            });
                    }
                }
            }
        }
        // Degradation bookkeeping: a fresh fix means healthy; a recent one
        // means degraded (coasting on odometry); anything older is pure
        // dead reckoning. Equipped robots stay healthy.
        if r.rf.is_some() {
            let state = match r.last_fix_window {
                Some(w) if w == window => DegradationState::Healthy,
                Some(w) if window.saturating_sub(w) <= 2 => DegradationState::Degraded,
                _ => DegradationState::DeadReckoning,
            };
            if r.health.transition(now, state) {
                world.telemetry.emit(
                    now,
                    TelemetryEvent::HealthTransition {
                        robot: robot as u32,
                        state: state.as_str(),
                    },
                );
            }
        }
        // Synchronization accounting.
        if world.scenario.sync_enabled {
            if r.synced_this_window {
                world.traffic.syncs_delivered += 1;
                world.telemetry.emit(
                    now,
                    TelemetryEvent::SyncDelivered {
                        robot: robot as u32,
                        window,
                    },
                );
            } else {
                r.clock.note_missed_sync();
                world.traffic.syncs_missed += 1;
                world.telemetry.emit(
                    now,
                    TelemetryEvent::SyncMissed {
                        robot: robot as u32,
                        window,
                    },
                );
                world.telemetry.legacy(now, TraceLevel::Warn, "sync", || {
                    format!("robot {robot} missed SYNC in window {window}")
                });
            }
        }
        // Sleep until the next window.
        if world.scenario.coordination {
            r.radio.set_state(now, PowerState::Sleep);
            world.telemetry.emit(
                now,
                TelemetryEvent::RadioState {
                    robot: robot as u32,
                    state: PowerState::Sleep.as_str(),
                },
            );
        }
    }
    // Schedule the next wake on the robot's local clock.
    let next_window = window + 1;
    let next_start = world.window_start_time(next_window);
    if next_start >= engine.horizon() {
        return;
    }
    let guard = world.robots[robot]
        .clock
        .effective_guard(world.scenario.guard_band, world.max_guard);
    let intended = next_start - guard.min(next_start.saturating_since(SimTime::ZERO));
    let fire = world.robots[robot].clock.actual_fire_time(intended, now);
    engine.schedule_at(
        fire.min(engine.horizon()),
        Event::RobotWake {
            robot,
            window: next_window,
            epoch,
        },
    );
}

/// Puts `packet` on the air from `robot` and schedules the delivery
/// judgment at the end of its airtime.
fn transmit(
    engine: &mut Engine<Event>,
    world: &mut World,
    robot: usize,
    packet: Packet,
    now: SimTime,
) {
    // A garbling transmitter corrupts the frame on the air: if the garbled
    // bytes still parse the receivers get a wrong-but-well-formed packet;
    // if not, the frame occupies airtime and reception energy but is
    // dropped at every receiver's decoder.
    let mut packet = packet;
    let mut corrupt = false;
    if world.robots[robot].garbled_tx {
        let mut raw = packet.encode().to_vec();
        garble_bytes(&mut raw, &mut world.fault_rng);
        match Packet::decode(Bytes::from(raw)) {
            Ok(altered) => {
                world.robustness.garbled_frames_delivered += 1;
                packet = altered;
            }
            Err(_) => corrupt = true,
        }
    }
    let bytes = packet.wire_size();
    let src_pos = world.robots[robot].motion.true_position();
    let src_id = world.robots[robot].id;
    world.robots[robot].radio.record_tx(now, bytes);
    let duration = world.robots[robot].radio.tx_duration(bytes);
    let tx = world
        .medium
        .begin_tx(src_id, src_pos, packet, now, duration);
    if corrupt {
        world.corrupt_txs.insert(tx);
    }
    let mut receivers = Vec::new();
    let detect_horizon = world.channel.max_range() * 1.5;
    let sp = world.telemetry.span_start();
    for j in 0..world.robots.len() {
        if j == robot || !world.robots[j].radio.can_receive() {
            continue;
        }
        let d = src_pos.distance_to(world.robots[j].motion.true_position());
        if d <= 0.0 || d > detect_horizon {
            continue;
        }
        let rssi = world.channel.sample_rssi(d, &mut world.channel_rng);
        if !world.channel.is_detectable(rssi) {
            continue;
        }
        // Unmodelled losses (obstructions, interference bursts).
        if world.scenario.packet_loss > 0.0
            && rand::Rng::gen_bool(&mut world.channel_rng, world.scenario.packet_loss)
        {
            continue;
        }
        // Injected Gilbert–Elliott burst loss on this receiver's link.
        if let Some(links) = world.burst.as_mut() {
            if links[j].drops(&mut world.fault_rng) {
                world.robustness.burst_losses += 1;
                continue;
            }
        }
        world.medium.record_rssi(tx, world.robots[j].id, rssi);
        receivers.push(j);
    }
    world.telemetry.span_end(world.spans.channel_sample, sp);
    engine.schedule_at(now + duration, Event::TxEnd { tx, receivers });
}

/// Judges every reception of frame `tx` and dispatches delivered packets.
fn deliver(
    engine: &mut Engine<Event>,
    world: &mut World,
    tx: TxId,
    receivers: &[usize],
    now: SimTime,
) {
    let corrupt = world.corrupt_txs.remove(&tx);
    for &j in receivers {
        let id = world.robots[j].id;
        match world.medium.outcome(tx, id) {
            ReceptionOutcome::Delivered { rssi, packet } => {
                if !world.robots[j].radio.can_receive() {
                    continue; // fell asleep mid-frame
                }
                world.robots[j].radio.record_rx(now, packet.wire_size());
                if corrupt {
                    // The frame arrived but its bytes no longer parse: the
                    // receiver paid the energy and drops it at the decoder.
                    world.robustness.corrupt_frames_dropped += 1;
                    continue;
                }
                dispatch(engine, world, j, packet, rssi, now);
            }
            ReceptionOutcome::Collided { .. } | ReceptionOutcome::HalfDuplex => {}
            ReceptionOutcome::NotReceivable => {}
            ReceptionOutcome::Expired => {}
        }
    }
}

/// Routes a delivered packet to the localizer or the mesh node.
fn dispatch(
    engine: &mut Engine<Event>,
    world: &mut World,
    robot: usize,
    packet: Packet,
    rssi: cocoa_net::rssi::Dbm,
    now: SimTime,
) {
    match &packet.payload {
        Payload::Beacon { position } => {
            let gate = world.scenario.outlier_gate_m;
            let mode = world.mode();
            let area = world.scenario.area;
            // The robot's own current estimate anchors the consistency
            // check: a beacon whose claimed range disagrees wildly with
            // the RSSI-implied range is rejected as an outlier.
            let reference = {
                let r = &world.robots[robot];
                r.has_fix.then(|| r.estimate(mode, &area))
            };
            let r = &mut world.robots[robot];
            if let Some(rf) = r.rf.as_mut() {
                world.traffic.beacons_received += 1;
                let sp = world.telemetry.span_start();
                let result = rf.observe_beacon_checked(
                    &world.table,
                    &world.radial,
                    *position,
                    rssi,
                    reference,
                    gate,
                );
                world.telemetry.span_end(world.spans.grid_update, sp);
                if result == ObservationResult::Outlier {
                    world.robustness.outlier_beacons_rejected += 1;
                }
                let outcome = match result {
                    ObservationResult::Applied => "applied",
                    ObservationResult::Outlier => "outlier",
                    ObservationResult::Rejected => "rejected",
                    ObservationResult::NoPdf => "no_pdf",
                };
                let from = packet.src.0;
                world.telemetry.emit_full(now, || TelemetryEvent::BeaconRx {
                    robot: robot as u32,
                    from,
                    rssi_dbm: rssi.value(),
                    outcome,
                });
                if result == ObservationResult::Applied {
                    world
                        .telemetry
                        .emit_full(now, || TelemetryEvent::GridUpdate {
                            robot: robot as u32,
                        });
                }
            }
        }
        Payload::Sync { .. } => {
            // Direct SYNC payloads are not used by the runner (SYNC rides
            // as mesh data) but remain valid protocol traffic.
        }
        _ => {
            let mode = world.mode();
            let area = world.scenario.area;
            let info = world.robots[robot].mobility_info(mode, &area);
            let sp = world.telemetry.span_start();
            let actions = world.robots[robot].mesh.handle_packet(now, &packet, &info);
            world.telemetry.span_end(world.spans.mesh_handle, sp);
            for action in actions {
                match action {
                    ProtocolAction::Broadcast {
                        packet,
                        jitter_bound,
                    } => {
                        let jitter = uniform(
                            0.0,
                            jitter_bound.as_secs_f64().max(1e-4),
                            &mut world.jitter_rng,
                        );
                        engine.schedule_in(
                            SimDuration::from_secs_f64(jitter),
                            Event::Transmit {
                                robot,
                                intent: TxIntent::Mesh(packet),
                            },
                        );
                    }
                    ProtocolAction::Deliver { source: _, body } => {
                        match SyncMessage::decode(body) {
                            Some(_msg) => {
                                let r = &mut world.robots[robot];
                                if r.clock.resync(now) {
                                    r.synced_this_window = true;
                                } else {
                                    // A replayed or reordered SYNC older than
                                    // the clock's anchor: ignored, counted.
                                    world.robustness.stale_syncs_ignored += 1;
                                }
                            }
                            None => {
                                // Garbled in flight: the mesh delivered bytes
                                // the application cannot parse.
                                world.robustness.malformed_sync_bodies += 1;
                                world.robots[robot].mesh.note_undecodable_delivery();
                            }
                        }
                    }
                    ProtocolAction::ScheduleReply { source, after } => {
                        engine.schedule_in(after, Event::MeshReply { robot, source });
                    }
                    ProtocolAction::ScheduleRebroadcast { source, seq, after } => {
                        engine.schedule_in(after, Event::MeshRebroadcast { robot, source, seq });
                    }
                }
            }
        }
    }
}
