//! Facade over the [`crate::world`] module tree, kept so existing callers
//! (`cocoa_core::runner::run`) and the prelude stay stable.
//!
//! The simulation itself — event vocabulary, coordination timeline,
//! physical layer, mesh backends, fault hooks and metrics finalization —
//! lives in [`crate::world`]; see that module's docs for the map.

pub use crate::world::checkpoint::{scenario_fingerprint, warm_fingerprint, SimRun, WarmArtifacts};
pub use crate::world::{run, run_traced, run_with_telemetry};
