//! The per-robot state bundle and its estimate logic.

use cocoa_localization::estimator::{EstimatorMode, WindowedRfEstimator};
use cocoa_mobility::motion::RobotMotion;
use cocoa_multicast::mrmm::MobilityInfo;
use cocoa_net::geometry::{Area, Point};
use cocoa_net::packet::NodeId;
use cocoa_net::radio::Radio;

use crate::health::HealthMonitor;
use crate::sync::DriftingClock;
use crate::world::mesh::MeshBackend;

/// The reference pair stored at each RF fix, used to re-anchor the
/// dead-reckoned heading from consecutive fixes: comparing the
/// displacement the odometer *integrated* against the displacement the
/// *fixes* observed yields the accumulated heading error — an estimator a
/// real robot can run, since both quantities are locally known.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixAnchor {
    /// The RF fix position.
    pub fix: Point,
    /// The odometry estimate at the moment of that fix (before reset).
    pub odo_at_fix: Point,
}

/// One robot in the team: motion, radio, estimator, mesh node and clock.
pub struct Robot {
    /// Network identity.
    pub id: NodeId,
    /// Index into the team vector.
    pub index: usize,
    /// Whether this robot carries a localization device (laser/SLAM).
    pub equipped: bool,
    /// True motion plus dead-reckoned belief.
    pub motion: RobotMotion,
    /// The 802.11 radio with energy accounting.
    pub radio: Radio,
    /// The windowed Bayesian RF estimator (unequipped robots in RF modes).
    pub rf: Option<WindowedRfEstimator>,
    /// The mesh multicast transport (flood, ODMRP or MRMM), behind the
    /// [`MeshBackend`] trait so the runner never names a concrete protocol.
    pub mesh: Box<dyn MeshBackend>,
    /// The drifting local clock.
    pub clock: DriftingClock,
    /// Whether an RF fix has ever been obtained.
    pub has_fix: bool,
    /// Window index of the last fresh fix.
    pub last_fix_window: Option<u64>,
    /// Whether a SYNC arrived during the current window.
    pub synced_this_window: bool,
    /// Reference pair from the previous fix (heading re-anchoring).
    pub fix_anchor: Option<FixAnchor>,
    /// Whether the robot is running (false after an injected crash).
    pub alive: bool,
    /// Wake-chain epoch: bumped on every crash so pending wake/window-end
    /// events from the previous life are recognized as stale and dropped.
    pub epoch: u32,
    /// Fault flag: this robot's transmitter corrupts outgoing frames.
    pub garbled_tx: bool,
    /// Fault flag: offset added to this robot's advertised beacon
    /// coordinates (a faulty localization device).
    pub beacon_offset: Option<(f64, f64)>,
    /// Degradation state machine and its time ledger.
    pub health: HealthMonitor,
}

impl std::fmt::Debug for Robot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Robot")
            .field("id", &self.id)
            .field("equipped", &self.equipped)
            .field("has_fix", &self.has_fix)
            .field("alive", &self.alive)
            .finish()
    }
}

impl Robot {
    /// The robot's published position estimate under `mode`.
    ///
    /// - Equipped robots report their device position (ground truth);
    /// - odometry-only robots report the dead-reckoned pose;
    /// - RF-only robots freeze the last fix (area centre before the first
    ///   fix — the mean of the uniform prior);
    /// - CoCoA robots dead-reckon from the last fix.
    pub fn estimate(&self, mode: EstimatorMode, area: &Area) -> Point {
        if self.equipped && mode.uses_rf() {
            return self.motion.true_position();
        }
        match mode {
            EstimatorMode::OdometryOnly => self.motion.odometry_pose().position,
            EstimatorMode::RfOnly => self
                .rf
                .as_ref()
                .and_then(|rf| rf.last_fix())
                .unwrap_or_else(|| area.center()),
            EstimatorMode::Cocoa => {
                if self.has_fix {
                    self.motion.odometry_pose().position
                } else {
                    area.center()
                }
            }
        }
    }

    /// Localization error under `mode`, metres.
    pub fn localization_error(&self, mode: EstimatorMode, area: &Area) -> f64 {
        self.motion
            .true_position()
            .distance_to(self.estimate(mode, area))
    }

    /// Whether this robot's error is reported in the paper's metrics
    /// (odometry-only runs report everyone; RF runs only unequipped).
    pub fn reports_error(&self, mode: EstimatorMode) -> bool {
        match mode {
            EstimatorMode::OdometryOnly => true,
            EstimatorMode::RfOnly | EstimatorMode::Cocoa => !self.equipped,
        }
    }

    /// The position this robot advertises in beacons: the device position
    /// for equipped robots, the current estimate for relay beacons.
    pub fn beacon_position(&self, mode: EstimatorMode, area: &Area) -> Point {
        if self.equipped {
            self.motion.true_position()
        } else {
            self.estimate(mode, area)
        }
    }

    /// The mobility knowledge advertised in JOIN QUERY packets: believed
    /// position plus commanded velocity and residual leg distance (both
    /// known exactly — the robot issued the command itself).
    pub fn mobility_info(&self, mode: EstimatorMode, area: &Area) -> MobilityInfo {
        MobilityInfo {
            position: self.estimate(mode, area),
            velocity: self.motion.velocity(),
            d_rest: self.motion.d_rest(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocoa_localization::grid::GridConfig;
    use cocoa_mobility::odometry::OdometryConfig;
    use cocoa_mobility::waypoint::WaypointConfig;
    use cocoa_multicast::odmrp::OdmrpConfig;
    use cocoa_multicast::protocol::MulticastProtocol;
    use cocoa_net::energy::EnergyParams;
    use cocoa_net::packet::GroupId;
    use cocoa_sim::rng::SeedSplitter;
    use cocoa_sim::time::SimTime;

    fn robot(equipped: bool) -> Robot {
        let area = Area::square(200.0);
        let mut rng = SeedSplitter::new(1).stream("move", 0);
        Robot {
            id: NodeId(0),
            index: 0,
            equipped,
            motion: RobotMotion::new(
                WaypointConfig::paper(area, 2.0),
                OdometryConfig::default(),
                Point::new(30.0, 40.0),
                &mut rng,
            ),
            radio: Radio::new(EnergyParams::default(), SimTime::ZERO),
            rf: Some(WindowedRfEstimator::new(GridConfig::new(area, 2.0))),
            mesh: crate::world::mesh::make_backend(
                MulticastProtocol::Mrmm,
                NodeId(0),
                GroupId(1),
                true,
                OdmrpConfig::default(),
            ),
            clock: DriftingClock::new(0.0),
            has_fix: false,
            last_fix_window: None,
            synced_this_window: false,
            fix_anchor: None,
            alive: true,
            epoch: 0,
            garbled_tx: false,
            beacon_offset: None,
            health: HealthMonitor::new(crate::health::DegradationState::Degraded, SimTime::ZERO),
        }
    }

    #[test]
    fn equipped_robot_reports_truth_and_no_error() {
        let r = robot(true);
        let area = Area::square(200.0);
        assert_eq!(
            r.estimate(EstimatorMode::Cocoa, &area),
            r.motion.true_position()
        );
        assert_eq!(r.localization_error(EstimatorMode::Cocoa, &area), 0.0);
        assert!(!r.reports_error(EstimatorMode::Cocoa));
        assert!(r.reports_error(EstimatorMode::OdometryOnly));
    }

    #[test]
    fn unfixed_rf_robot_estimates_area_center() {
        let r = robot(false);
        let area = Area::square(200.0);
        assert_eq!(r.estimate(EstimatorMode::RfOnly, &area), area.center());
        assert_eq!(r.estimate(EstimatorMode::Cocoa, &area), area.center());
        // Odometry-only still reads the dead-reckoned pose.
        assert_eq!(
            r.estimate(EstimatorMode::OdometryOnly, &area),
            r.motion.odometry_pose().position
        );
    }

    #[test]
    fn cocoa_robot_with_fix_uses_odometry_pose() {
        let mut r = robot(false);
        let area = Area::square(200.0);
        r.has_fix = true;
        assert_eq!(
            r.estimate(EstimatorMode::Cocoa, &area),
            r.motion.odometry_pose().position
        );
    }

    #[test]
    fn beacon_position_follows_equipment() {
        let r = robot(true);
        let area = Area::square(200.0);
        assert_eq!(
            r.beacon_position(EstimatorMode::Cocoa, &area),
            r.motion.true_position()
        );
        let u = robot(false);
        assert_eq!(
            u.beacon_position(EstimatorMode::Cocoa, &area),
            area.center(),
            "relay beacons advertise the estimate"
        );
    }

    #[test]
    fn mobility_info_reflects_commands() {
        let r = robot(true);
        let area = Area::square(200.0);
        let info = r.mobility_info(EstimatorMode::Cocoa, &area);
        assert!((info.velocity.norm() - r.motion.waypoints().speed()).abs() < 1e-9);
        assert!(info.d_rest > 0.0);
    }
}
