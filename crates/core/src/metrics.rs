//! Run metrics: the two quantities the paper evaluates (Section 3,
//! "Metrics") plus the audit trail behind them.
//!
//! 1. **Localization error** — distance between a robot's true position
//!    and its estimate, averaged per second over the reporting robots
//!    (all robots in odometry-only runs, unequipped robots otherwise);
//! 2. **Energy consumption** — team-wide, split by category (tx / rx /
//!    idle / sleep / wake) so the coordination savings are auditable.

use serde::{Deserialize, Serialize};

use cocoa_multicast::mesh::MeshStats;
use cocoa_net::energy::EnergyLedger;
use cocoa_net::geometry::Point;
use cocoa_sim::stats;
use cocoa_sim::time::SimTime;

/// One point of the per-second error series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorPoint {
    /// Sample time, seconds.
    pub t_s: f64,
    /// Mean localization error over the reporting robots, metres.
    pub mean_error_m: f64,
    /// How many robots contributed.
    pub robots: usize,
}

/// An empirical CDF over per-robot errors at one instant (paper Fig. 8).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorSnapshot {
    /// When the snapshot was taken.
    pub time: SimTime,
    /// Per-robot errors, sorted ascending, metres.
    pub errors_m: Vec<f64>,
}

impl ErrorSnapshot {
    /// Builds a snapshot from unsorted errors.
    pub fn new(time: SimTime, mut errors_m: Vec<f64>) -> Self {
        stats::sort_finite(&mut errors_m);
        ErrorSnapshot { time, errors_m }
    }

    /// Fraction of robots with error at most `x` metres.
    pub fn fraction_below(&self, x: f64) -> f64 {
        if self.errors_m.is_empty() {
            return 0.0;
        }
        let n = self.errors_m.partition_point(|&e| e <= x);
        n as f64 / self.errors_m.len() as f64
    }

    /// The `p`-quantile error (`p` in `[0, 1]`).
    ///
    /// # Panics
    ///
    /// Panics if the snapshot is empty or `p` is outside `[0, 1]`.
    pub fn percentile(&self, p: f64) -> f64 {
        stats::percentile_sorted(&self.errors_m, p)
    }

    /// Mean error of the snapshot, metres.
    pub fn mean(&self) -> f64 {
        stats::mean(&self.errors_m)
    }
}

/// Team energy accounting.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Final per-robot ledgers (index = robot index).
    pub per_robot: Vec<EnergyLedger>,
}

impl EnergyReport {
    /// The team-wide ledger (sum over robots).
    pub fn team(&self) -> EnergyLedger {
        let mut total = EnergyLedger::new();
        for l in &self.per_robot {
            total.merge(l);
        }
        total
    }

    /// Team total in joules.
    pub fn total_j(&self) -> f64 {
        self.team().total_j()
    }

    /// Mean per-robot total in joules.
    pub fn mean_per_robot_j(&self) -> f64 {
        if self.per_robot.is_empty() {
            0.0
        } else {
            self.total_j() / self.per_robot.len() as f64
        }
    }
}

/// Packet-level counters for the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TrafficStats {
    /// Localization beacons put on the air.
    pub beacons_sent: u64,
    /// Beacon receptions delivered to localizers.
    pub beacons_received: u64,
    /// Receptions lost to collisions / half-duplex.
    pub collisions: u64,
    /// SYNC messages delivered to robots.
    pub syncs_delivered: u64,
    /// Robot-windows that passed without a SYNC.
    pub syncs_missed: u64,
    /// Fresh RF fixes computed.
    pub fixes: u64,
    /// Windows during which a robot was awake but got fewer than the
    /// minimum beacons.
    pub starved_windows: u64,
}

/// Fault-injection and graceful-degradation counters for the run.
///
/// All counters stay zero on a fault-free run, so adding robustness
/// accounting costs nothing on the benign baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RobustnessStats {
    /// Robot crashes injected (and actually applied to a live robot).
    pub crashes: u64,
    /// Robot reboots injected (and applied to a crashed robot).
    pub reboots: u64,
    /// Sync-timebase failover elections performed.
    pub failovers: u64,
    /// Receptions dropped by the Gilbert–Elliott burst-loss overlay.
    pub burst_losses: u64,
    /// Garbled frames that no longer decoded and were dropped at the
    /// receiver instead of panicking the stack.
    pub corrupt_frames_dropped: u64,
    /// Garbled frames that still decoded to *something* and were delivered
    /// (the payload may carry wrong data — that is the point).
    pub garbled_frames_delivered: u64,
    /// Beacons rejected by the outlier gate (claimed position inconsistent
    /// with the measured RSSI).
    pub outlier_beacons_rejected: u64,
    /// Transmit windows in which the entropy watchdog declared the
    /// posterior flat and fell back to dead reckoning.
    pub flat_posteriors: u64,
    /// SYNC messages ignored because they carried a stale timestamp.
    pub stale_syncs_ignored: u64,
    /// Mesh data deliveries whose SYNC body failed to decode.
    pub malformed_sync_bodies: u64,
}

/// A robot's state at the end of the run: what downstream applications
/// (e.g. geographic routing over CoCoA coordinates) consume.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RobotFinalState {
    /// Ground-truth position.
    pub true_position: Point,
    /// The robot's own position estimate.
    pub estimate: Point,
    /// Whether the robot carried a localization device.
    pub equipped: bool,
}

/// Everything a simulation run produces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Per-second mean localization error.
    pub error_series: Vec<ErrorPoint>,
    /// Requested per-robot error CDF snapshots (paper Fig. 8).
    pub snapshots: Vec<ErrorSnapshot>,
    /// Energy accounting.
    pub energy: EnergyReport,
    /// Mesh protocol counters summed over the team.
    pub mesh: MeshStats,
    /// Packet-level counters.
    pub traffic: TrafficStats,
    /// Per-robot truth/estimate at the end of the run.
    pub final_states: Vec<RobotFinalState>,
    /// Per-robot truth/estimate at each requested snapshot time (same
    /// instants as `snapshots`) — lets applications like coverage mapping
    /// or routing consume mid-run coordinates.
    pub position_snapshots: Vec<(SimTime, Vec<RobotFinalState>)>,
    /// Fault-injection and degradation counters (all zero on benign runs).
    pub robustness: RobustnessStats,
    /// Per-robot time spent in each degradation state (index = robot
    /// index).
    pub health: Vec<crate::health::HealthLedger>,
    /// Total events the engine processed (performance telemetry).
    pub events_processed: u64,
}

impl RunMetrics {
    /// Mean of the per-second error series — "average localization error
    /// over time" in the paper's wording.
    pub fn mean_error_over_time(&self) -> f64 {
        let ys: Vec<f64> = self.error_series.iter().map(|p| p.mean_error_m).collect();
        stats::mean(&ys)
    }

    /// Maximum of the per-second error series.
    pub fn max_error_over_time(&self) -> f64 {
        self.error_series
            .iter()
            .map(|p| p.mean_error_m)
            .fold(0.0, f64::max)
    }

    /// The series value closest to `t_s` seconds, if any samples exist.
    pub fn error_near(&self, t_s: f64) -> Option<f64> {
        self.error_series
            .iter()
            .min_by(|a, b| {
                (a.t_s - t_s)
                    .abs()
                    .partial_cmp(&(b.t_s - t_s).abs())
                    .expect("finite")
            })
            .map(|p| p.mean_error_m)
    }

    /// Mean error over the tail of the run (after `from_s` seconds) —
    /// useful to exclude the cold start before the first fix.
    pub fn mean_error_after(&self, from_s: f64) -> f64 {
        let tail: Vec<f64> = self
            .error_series
            .iter()
            .filter(|p| p.t_s >= from_s)
            .map(|p| p.mean_error_m)
            .collect();
        stats::mean(&tail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics_with(series: &[(f64, f64)]) -> RunMetrics {
        RunMetrics {
            error_series: series
                .iter()
                .map(|&(t_s, e)| ErrorPoint {
                    t_s,
                    mean_error_m: e,
                    robots: 25,
                })
                .collect(),
            snapshots: Vec::new(),
            energy: EnergyReport::default(),
            mesh: MeshStats::default(),
            traffic: TrafficStats::default(),
            final_states: Vec::new(),
            position_snapshots: Vec::new(),
            robustness: RobustnessStats::default(),
            health: Vec::new(),
            events_processed: 0,
        }
    }

    #[test]
    fn series_aggregates() {
        let m = metrics_with(&[(0.0, 2.0), (1.0, 4.0), (2.0, 9.0)]);
        assert!((m.mean_error_over_time() - 5.0).abs() < 1e-12);
        assert_eq!(m.max_error_over_time(), 9.0);
        assert_eq!(m.error_near(1.2), Some(4.0));
        assert!((m.mean_error_after(1.0) - 6.5).abs() < 1e-12);
    }

    #[test]
    fn empty_series_is_safe() {
        let m = metrics_with(&[]);
        assert_eq!(m.mean_error_over_time(), 0.0);
        assert_eq!(m.max_error_over_time(), 0.0);
        assert_eq!(m.error_near(5.0), None);
    }

    #[test]
    fn snapshot_cdf() {
        let s = ErrorSnapshot::new(SimTime::from_secs(804), vec![5.0, 1.0, 3.0, 9.0, 7.0]);
        assert_eq!(s.errors_m, vec![1.0, 3.0, 5.0, 7.0, 9.0]);
        assert!((s.fraction_below(5.0) - 0.6).abs() < 1e-12);
        assert_eq!(s.fraction_below(0.5), 0.0);
        assert_eq!(s.fraction_below(100.0), 1.0);
        assert_eq!(s.percentile(0.5), 5.0);
        assert_eq!(s.percentile(1.0), 9.0);
        assert!((s.mean() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_snapshot_fraction_is_zero() {
        let s = ErrorSnapshot::new(SimTime::ZERO, vec![]);
        assert_eq!(s.fraction_below(10.0), 0.0);
    }

    #[test]
    fn energy_report_sums() {
        use cocoa_net::energy::{EnergyParams, PowerState};
        use cocoa_sim::time::SimDuration;
        let p = EnergyParams::default();
        let mut a = EnergyLedger::new();
        a.accrue(&p, PowerState::Idle, SimDuration::from_secs(1));
        let mut b = EnergyLedger::new();
        b.accrue(&p, PowerState::Sleep, SimDuration::from_secs(1));
        let report = EnergyReport {
            per_robot: vec![a, b],
        };
        assert!((report.total_j() - 0.95).abs() < 1e-9);
        assert!((report.mean_per_robot_j() - 0.475).abs() < 1e-9);
    }
}
