//! Simulation time primitives.
//!
//! All simulation time is kept as an integer number of **microseconds** so
//! that event ordering is exact and runs are bit-reproducible across
//! platforms. Floating-point seconds are accepted and produced at the API
//! boundary only.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Number of microseconds in one second.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// An absolute instant on the simulation clock.
///
/// `SimTime` is a newtype over integer microseconds since the start of the
/// simulation (time zero). It is totally ordered and cheap to copy.
///
/// # Examples
///
/// ```
/// use cocoa_sim::time::{SimTime, SimDuration};
///
/// let t = SimTime::from_secs_f64(1.5);
/// assert_eq!(t.as_micros(), 1_500_000);
/// let later = t + SimDuration::from_millis(250);
/// assert_eq!(later.as_secs_f64(), 1.75);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulation time (always non-negative).
///
/// # Examples
///
/// ```
/// use cocoa_sim::time::SimDuration;
///
/// let d = SimDuration::from_secs(3);
/// assert_eq!(d * 2, SimDuration::from_secs(6));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from integer microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates an instant from integer milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates an instant from integer seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * MICROS_PER_SEC)
    }

    /// Creates an instant from floating-point seconds, rounding to the
    /// nearest microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "SimTime requires finite non-negative seconds, got {s}"
        );
        SimTime((s * MICROS_PER_SEC as f64).round() as u64)
    }

    /// This instant as integer microseconds since time zero.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant as floating-point seconds since time zero.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// This instant as whole seconds since time zero (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / MICROS_PER_SEC
    }

    /// The duration elapsed since an `earlier` instant.
    ///
    /// Returns [`SimDuration::ZERO`] if `earlier` is in the future,
    /// mirroring `std::time::Instant::saturating_duration_since`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The duration since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "SimTime::since: earlier ({earlier}) is after self ({self})"
        );
        SimDuration(self.0 - earlier.0)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from integer microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from integer milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from integer seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * MICROS_PER_SEC)
    }

    /// Creates a duration from floating-point seconds, rounding to the
    /// nearest microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "SimDuration requires finite non-negative seconds, got {s}"
        );
        SimDuration((s * MICROS_PER_SEC as f64).round() as u64)
    }

    /// This duration as integer microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This duration as floating-point seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Whether this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Integer division of one duration by another: how many `other`s fit.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn div_duration(self, other: SimDuration) -> u64 {
        assert!(!other.is_zero(), "division by zero duration");
        self.0 / other.0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl From<SimDuration> for f64 {
    fn from(d: SimDuration) -> f64 {
        d.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_roundtrip_micros() {
        let t = SimTime::from_micros(1_234_567);
        assert_eq!(t.as_micros(), 1_234_567);
        assert!((t.as_secs_f64() - 1.234567).abs() < 1e-12);
    }

    #[test]
    fn time_from_secs_f64_rounds() {
        let t = SimTime::from_secs_f64(0.000_000_4);
        assert_eq!(t.as_micros(), 0);
        let t = SimTime::from_secs_f64(0.000_000_6);
        assert_eq!(t.as_micros(), 1);
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn time_rejects_negative() {
        let _ = SimTime::from_secs_f64(-1.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_millis(1500);
        assert_eq!((t + d).as_micros(), 11_500_000);
        assert_eq!((t + d) - t, SimDuration::from_millis(1500));
        assert_eq!(d * 4, SimDuration::from_secs(6));
        assert_eq!(d / 3, SimDuration::from_micros(500_000));
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "earlier")]
    fn since_panics_on_order() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        let _ = a.since(b);
    }

    #[test]
    fn div_duration_counts() {
        let period = SimDuration::from_secs(100);
        let total = SimDuration::from_secs(1800);
        assert_eq!(total.div_duration(period), 18);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [
            SimTime::from_secs(3),
            SimTime::ZERO,
            SimTime::from_millis(1),
        ];
        v.sort();
        assert_eq!(v[0], SimTime::ZERO);
        assert_eq!(v[2], SimTime::from_secs(3));
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
        assert_eq!(SimDuration::from_micros(1).to_string(), "0.000001s");
    }
}
