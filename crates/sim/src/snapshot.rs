//! A versioned, dependency-free binary checkpoint codec.
//!
//! Snapshots capture complete run state at an event-queue boundary so a
//! resumed run is *bit-identical* to an uninterrupted one. The container
//! format is deliberately dumb — self-describing sections of little-endian
//! primitives, each guarded by a CRC — so it can be produced and consumed
//! without serde (the build environment vendors only API stubs) and so two
//! snapshots can be compared section-by-section ([`Snapshot::diff`]).
//!
//! # Wire layout
//!
//! ```text
//! magic     b"CSNP"                      4 bytes
//! version   u32 LE                       schema version, bump on change
//! meta      u32 len + UTF-8 JSON line    built with cocoa_sim::jsonfmt
//! count     u32                          number of sections
//! section*  tag (u32 len + UTF-8)
//!           payload (u64 len + bytes)
//!           crc32 (u32, IEEE, over payload only)
//! ```
//!
//! Sections are written and read in a fixed order by convention, but the
//! reader indexes them by tag, so adding a section is backward-compatible
//! within a schema version while *reinterpreting* one requires a version
//! bump.
//!
//! Every decode error is a typed [`SnapshotError`]; feeding this module
//! truncated or corrupted bytes must never panic.
//!
//! # Examples
//!
//! ```
//! use cocoa_sim::snapshot::{self, Snapshot, SnapshotWriter};
//!
//! let mut w = SnapshotWriter::new("{\"kind\":\"snapshot\"}".to_string());
//! let mut payload = Vec::new();
//! snapshot::put_u64(&mut payload, 42);
//! snapshot::put_str(&mut payload, "hello");
//! w.push_section("demo", payload);
//! let bytes = w.finish();
//!
//! let snap = Snapshot::parse(&bytes).unwrap();
//! let mut r = snap.section("demo").unwrap();
//! assert_eq!(r.u64().unwrap(), 42);
//! assert_eq!(r.str_().unwrap(), "hello");
//! r.finish().unwrap();
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// The four magic bytes at the start of every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"CSNP";

/// Version of the snapshot wire schema. Bump whenever the meaning of any
/// section's bytes changes; readers reject other versions outright rather
/// than guessing. (v3: the telemetry section gained deterministic
/// histogram state after the counters vector. v4: the estimator section
/// became backend-tagged — Bayes, multilateration, or EKF payloads.)
pub const SNAPSHOT_SCHEMA_VERSION: u32 = 4;

/// A typed decode failure. Corrupted input surfaces here — never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Fewer bytes than the declared structure requires.
    Truncated {
        /// What was being decoded when the bytes ran out.
        context: &'static str,
    },
    /// The leading magic bytes are not `b"CSNP"`.
    BadMagic,
    /// The file's schema version is not the one this build understands.
    UnsupportedVersion {
        /// The version found in the file.
        found: u32,
    },
    /// A section's payload does not match its stored CRC.
    CrcMismatch {
        /// Tag of the damaged section.
        section: String,
    },
    /// A section the decoder requires is absent.
    MissingSection {
        /// Tag of the missing section.
        section: String,
    },
    /// Structurally invalid content (bad UTF-8, out-of-range enum
    /// discriminant, impossible length, …).
    Malformed {
        /// Human-readable description of the inconsistency.
        context: String,
    },
    /// A section decoded cleanly but left unread bytes behind — the writer
    /// and reader disagree about the section's shape.
    TrailingBytes {
        /// Tag or context of the over-long section.
        context: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated { context } => {
                write!(f, "snapshot truncated while reading {context}")
            }
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::UnsupportedVersion { found } => write!(
                f,
                "unsupported snapshot schema version {found} (this build reads {SNAPSHOT_SCHEMA_VERSION})"
            ),
            SnapshotError::CrcMismatch { section } => {
                write!(f, "CRC mismatch in section '{section}'")
            }
            SnapshotError::MissingSection { section } => {
                write!(f, "required section '{section}' missing")
            }
            SnapshotError::Malformed { context } => write!(f, "malformed snapshot: {context}"),
            SnapshotError::TrailingBytes { context } => {
                write!(f, "trailing bytes after {context}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3 polynomial), table generated at compile time.

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// The IEEE CRC-32 of `bytes` (the checksum guarding each section).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Primitive encoders: little-endian, length-prefixed strings and blobs.

/// Appends one byte.
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Appends a `u32`, little-endian.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64`, little-endian.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `i64`, little-endian two's complement.
pub fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its exact IEEE-754 bit pattern (bit-identical
/// round trips, NaN payloads included).
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

/// Appends a `bool` as one byte (0 or 1).
pub fn put_bool(buf: &mut Vec<u8>, v: bool) {
    buf.push(u8::from(v));
}

/// Appends a `usize` widened to `u64` (portable across word sizes).
pub fn put_usize(buf: &mut Vec<u8>, v: usize) {
    put_u64(buf, v as u64);
}

/// Appends a string as `u32` length + UTF-8 bytes.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, u32::try_from(s.len()).expect("string over 4 GiB"));
    buf.extend_from_slice(s.as_bytes());
}

/// Appends a byte blob as `u64` length + raw bytes.
pub fn put_bytes(buf: &mut Vec<u8>, bytes: &[u8]) {
    put_u64(buf, bytes.len() as u64);
    buf.extend_from_slice(bytes);
}

// ---------------------------------------------------------------------------
// Reader.

/// A bounds-checked typed cursor over one section's payload.
///
/// Every read returns [`SnapshotError::Truncated`] instead of panicking
/// when the bytes run out; [`SnapshotReader::finish`] rejects unread
/// trailing bytes so shape drift between writer and reader is caught.
#[derive(Debug, Clone)]
pub struct SnapshotReader<'a> {
    buf: &'a [u8],
    pos: usize,
    context: &'static str,
}

impl<'a> SnapshotReader<'a> {
    /// Wraps raw payload bytes; `context` labels errors.
    pub fn new(buf: &'a [u8], context: &'static str) -> Self {
        SnapshotReader {
            buf,
            pos: 0,
            context,
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated {
                context: self.context,
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, SnapshotError> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads an `f64` from its exact bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `bool`, rejecting any byte other than 0 or 1.
    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapshotError::Malformed {
                context: format!("bool byte {other} in {}", self.context),
            }),
        }
    }

    /// Reads a `usize` (stored as `u64`), rejecting values that overflow
    /// this platform's word size.
    pub fn usize_(&mut self) -> Result<usize, SnapshotError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapshotError::Malformed {
            context: format!("usize {v} overflows platform word in {}", self.context),
        })
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str_(&mut self) -> Result<&'a str, SnapshotError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|_| SnapshotError::Malformed {
            context: format!("non-UTF-8 string in {}", self.context),
        })
    }

    /// Reads a length-prefixed byte blob.
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let len = self.u64()?;
        let len = usize::try_from(len).map_err(|_| SnapshotError::Malformed {
            context: format!(
                "blob length {len} overflows platform word in {}",
                self.context
            ),
        })?;
        self.take(len)
    }

    /// Asserts the payload was consumed exactly.
    pub fn finish(self) -> Result<(), SnapshotError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapshotError::TrailingBytes {
                context: self.context.to_string(),
            })
        }
    }
}

// ---------------------------------------------------------------------------
// Container.

/// Builds a snapshot file: metadata header plus CRC-guarded sections.
#[derive(Debug)]
pub struct SnapshotWriter {
    meta: String,
    sections: Vec<(&'static str, Vec<u8>)>,
}

impl SnapshotWriter {
    /// Starts a snapshot whose metadata header is `meta` — one flat JSON
    /// line, typically built with [`crate::jsonfmt::ObjectWriter`].
    pub fn new(meta: String) -> Self {
        SnapshotWriter {
            meta,
            sections: Vec::new(),
        }
    }

    /// Appends a section. Tags must be unique; sections render in push
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `tag` was already pushed — duplicate tags would make
    /// [`Snapshot::section`] ambiguous.
    pub fn push_section(&mut self, tag: &'static str, payload: Vec<u8>) {
        assert!(
            self.sections.iter().all(|(t, _)| *t != tag),
            "duplicate snapshot section '{tag}'"
        );
        self.sections.push((tag, payload));
    }

    /// Number of sections pushed so far.
    pub fn section_count(&self) -> usize {
        self.sections.len()
    }

    /// Serializes the container: magic, version, metadata, sections with
    /// their CRCs.
    pub fn finish(self) -> Vec<u8> {
        let payload_total: usize = self
            .sections
            .iter()
            .map(|(t, p)| t.len() + p.len() + 16)
            .sum();
        let mut out = Vec::with_capacity(4 + 4 + 4 + self.meta.len() + 4 + payload_total);
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        put_u32(&mut out, SNAPSHOT_SCHEMA_VERSION);
        put_str(&mut out, &self.meta);
        put_u32(
            &mut out,
            u32::try_from(self.sections.len()).expect("section count"),
        );
        for (tag, payload) in &self.sections {
            put_str(&mut out, tag);
            put_bytes(&mut out, payload);
            put_u32(&mut out, crc32(payload));
        }
        out
    }
}

/// One parsed section: tag, payload, and the CRC stored in the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotSection {
    /// The section's tag.
    pub tag: String,
    /// The raw payload bytes (CRC already verified).
    pub payload: Vec<u8>,
    /// The verified CRC-32 of the payload.
    pub crc: u32,
}

/// A parsed snapshot file: version, metadata line, ordered sections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    version: u32,
    meta: String,
    sections: Vec<SnapshotSection>,
}

impl Snapshot {
    /// Parses and validates `bytes`: magic, version, structure and every
    /// section CRC. Corrupted input yields a typed error, never a panic.
    pub fn parse(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        let mut r = SnapshotReader::new(bytes, "snapshot header");
        let magic = r.take(4)?;
        if magic != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.u32()?;
        if version != SNAPSHOT_SCHEMA_VERSION {
            return Err(SnapshotError::UnsupportedVersion { found: version });
        }
        let meta = r.str_()?.to_string();
        let count = r.u32()?;
        let mut sections = Vec::with_capacity(count.min(1024) as usize);
        for _ in 0..count {
            r.context = "section table";
            let tag = r.str_()?.to_string();
            let payload = r.bytes()?.to_vec();
            let stored = r.u32()?;
            let actual = crc32(&payload);
            if stored != actual {
                return Err(SnapshotError::CrcMismatch { section: tag });
            }
            sections.push(SnapshotSection {
                tag,
                payload,
                crc: stored,
            });
        }
        r.context = "section table";
        r.finish()?;
        Ok(Snapshot {
            version,
            meta,
            sections,
        })
    }

    /// The file's schema version.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The metadata JSON line.
    pub fn meta(&self) -> &str {
        &self.meta
    }

    /// The parsed sections, in file order.
    pub fn sections(&self) -> &[SnapshotSection] {
        &self.sections
    }

    /// A typed reader over the payload of section `tag`.
    pub fn section(&self, tag: &'static str) -> Result<SnapshotReader<'_>, SnapshotError> {
        self.sections
            .iter()
            .find(|s| s.tag == tag)
            .map(|s| SnapshotReader::new(&s.payload, tag))
            .ok_or(SnapshotError::MissingSection {
                section: tag.to_string(),
            })
    }

    /// Compares two snapshots section by section.
    pub fn diff(&self, other: &Snapshot) -> SnapshotDiff {
        let mut deltas = Vec::new();
        for a in &self.sections {
            match other.sections.iter().find(|b| b.tag == a.tag) {
                None => deltas.push(SectionDelta {
                    tag: a.tag.clone(),
                    kind: DeltaKind::OnlyInFirst,
                }),
                Some(b) if a.payload != b.payload => {
                    let first_diff = a
                        .payload
                        .iter()
                        .zip(&b.payload)
                        .position(|(x, y)| x != y)
                        .unwrap_or_else(|| a.payload.len().min(b.payload.len()));
                    deltas.push(SectionDelta {
                        tag: a.tag.clone(),
                        kind: DeltaKind::Changed {
                            len_first: a.payload.len(),
                            len_second: b.payload.len(),
                            first_diff_offset: first_diff,
                        },
                    });
                }
                Some(_) => {}
            }
        }
        for b in &other.sections {
            if !self.sections.iter().any(|a| a.tag == b.tag) {
                deltas.push(SectionDelta {
                    tag: b.tag.clone(),
                    kind: DeltaKind::OnlyInSecond,
                });
            }
        }
        SnapshotDiff {
            meta_differs: self.meta != other.meta,
            sections: deltas,
        }
    }
}

/// How one section differs between two snapshots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaKind {
    /// Present only in the first snapshot.
    OnlyInFirst,
    /// Present only in the second snapshot.
    OnlyInSecond,
    /// Present in both with different payloads.
    Changed {
        /// Payload length in the first snapshot.
        len_first: usize,
        /// Payload length in the second snapshot.
        len_second: usize,
        /// Byte offset of the first difference (equal-prefix length if one
        /// payload is a prefix of the other).
        first_diff_offset: usize,
    },
}

/// One differing section in a [`Snapshot::diff`] report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionDelta {
    /// The section's tag.
    pub tag: String,
    /// How it differs.
    pub kind: DeltaKind,
}

/// The section-level comparison of two snapshots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotDiff {
    /// Whether the metadata lines differ.
    pub meta_differs: bool,
    /// Every differing section.
    pub sections: Vec<SectionDelta>,
}

impl SnapshotDiff {
    /// Whether the two snapshots are byte-identical in meta and sections.
    pub fn is_empty(&self) -> bool {
        !self.meta_differs && self.sections.is_empty()
    }
}

impl fmt::Display for SnapshotDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return writeln!(f, "snapshots identical");
        }
        if self.meta_differs {
            writeln!(f, "meta: differs")?;
        }
        for d in &self.sections {
            match &d.kind {
                DeltaKind::OnlyInFirst => writeln!(f, "{}: only in first", d.tag)?,
                DeltaKind::OnlyInSecond => writeln!(f, "{}: only in second", d.tag)?,
                DeltaKind::Changed {
                    len_first,
                    len_second,
                    first_diff_offset,
                } => writeln!(
                    f,
                    "{}: differs at byte {} (lengths {} vs {})",
                    d.tag, first_diff_offset, len_first, len_second
                )?,
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Interning: restoring `&'static str` fields from snapshot bytes.

static INTERNED: OnceLock<Mutex<BTreeMap<String, &'static str>>> = OnceLock::new();

/// Returns a `'static` copy of `s`, leaking at most once per distinct
/// string process-wide.
///
/// Telemetry events and counters carry `&'static str` names; restoring
/// them from snapshot bytes needs owned strings promoted to `'static`.
/// The memo bounds the leak to the set of distinct names ever restored —
/// a few kilobytes over any real workload.
pub fn intern(s: &str) -> &'static str {
    let mut map = INTERNED
        .get_or_init(|| Mutex::new(BTreeMap::new()))
        .lock()
        .expect("intern table poisoned");
    if let Some(&v) = map.get(s) {
        return v;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    map.insert(s.to_owned(), leaked);
    leaked
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut w = SnapshotWriter::new("{\"kind\":\"snapshot\",\"seed\":42}".to_string());
        let mut a = Vec::new();
        put_u64(&mut a, 7);
        put_f64(&mut a, -0.25);
        put_bool(&mut a, true);
        put_str(&mut a, "name");
        w.push_section("engine", a);
        let mut b = Vec::new();
        put_bytes(&mut b, &[1, 2, 3]);
        put_i64(&mut b, -5);
        w.push_section("rngs", b);
        w.finish()
    }

    #[test]
    fn round_trips_every_primitive() {
        let snap = Snapshot::parse(&sample()).unwrap();
        assert_eq!(snap.version(), SNAPSHOT_SCHEMA_VERSION);
        assert_eq!(snap.meta(), "{\"kind\":\"snapshot\",\"seed\":42}");
        let mut r = snap.section("engine").unwrap();
        assert_eq!(r.u64().unwrap(), 7);
        assert_eq!(r.f64().unwrap(), -0.25);
        assert!(r.bool().unwrap());
        assert_eq!(r.str_().unwrap(), "name");
        r.finish().unwrap();
        let mut r = snap.section("rngs").unwrap();
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(r.i64().unwrap(), -5);
        r.finish().unwrap();
    }

    #[test]
    fn f64_round_trip_is_bit_exact() {
        for v in [0.0, -0.0, f64::INFINITY, f64::NAN, 1.0e-308, 0.1 + 0.2] {
            let mut buf = Vec::new();
            put_f64(&mut buf, v);
            let got = SnapshotReader::new(&buf, "t").f64().unwrap();
            assert_eq!(got.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn truncation_at_every_length_is_a_typed_error() {
        let bytes = sample();
        for cut in 0..bytes.len() {
            match Snapshot::parse(&bytes[..cut]) {
                Ok(_) => panic!("truncated snapshot at {cut} bytes parsed"),
                Err(
                    SnapshotError::Truncated { .. }
                    | SnapshotError::BadMagic
                    | SnapshotError::CrcMismatch { .. }
                    | SnapshotError::Malformed { .. }
                    | SnapshotError::TrailingBytes { .. },
                ) => {}
                Err(other) => panic!("unexpected error at {cut}: {other}"),
            }
        }
    }

    #[test]
    fn corruption_is_caught_by_crc() {
        let mut bytes = sample();
        // Flip one bit inside the first section's payload (past header).
        let idx = bytes.len() - 20;
        bytes[idx] ^= 0x40;
        match Snapshot::parse(&bytes) {
            Err(SnapshotError::CrcMismatch { .. } | SnapshotError::Malformed { .. })
            | Err(SnapshotError::Truncated { .. }) => {}
            other => panic!("corruption not caught: {other:?}"),
        }
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let mut bytes = sample();
        bytes[0] = b'X';
        assert_eq!(Snapshot::parse(&bytes), Err(SnapshotError::BadMagic));
        let mut bytes = sample();
        bytes[4] = 99;
        assert_eq!(
            Snapshot::parse(&bytes),
            Err(SnapshotError::UnsupportedVersion { found: 99 })
        );
    }

    #[test]
    fn missing_section_and_trailing_bytes_are_typed() {
        let snap = Snapshot::parse(&sample()).unwrap();
        assert_eq!(
            snap.section("robots").unwrap_err(),
            SnapshotError::MissingSection {
                section: "robots".to_string()
            }
        );
        let mut r = snap.section("engine").unwrap();
        let _ = r.u64().unwrap();
        assert!(matches!(
            r.finish(),
            Err(SnapshotError::TrailingBytes { .. })
        ));
    }

    #[test]
    fn trailing_garbage_after_container_is_rejected() {
        let mut bytes = sample();
        bytes.push(0);
        assert!(matches!(
            Snapshot::parse(&bytes),
            Err(SnapshotError::TrailingBytes { .. })
        ));
    }

    #[test]
    fn diff_pinpoints_the_changed_section_and_offset() {
        let a = Snapshot::parse(&sample()).unwrap();
        let mut w = SnapshotWriter::new("{\"kind\":\"snapshot\",\"seed\":42}".to_string());
        let mut s1 = Vec::new();
        put_u64(&mut s1, 8); // differs from 7 at byte 0
        put_f64(&mut s1, -0.25);
        put_bool(&mut s1, true);
        put_str(&mut s1, "name");
        w.push_section("engine", s1);
        let mut s2 = Vec::new();
        put_bytes(&mut s2, &[1, 2, 3]);
        put_i64(&mut s2, -5);
        w.push_section("rngs", s2);
        let b = Snapshot::parse(&w.finish()).unwrap();
        let diff = a.diff(&b);
        assert!(!diff.is_empty());
        assert_eq!(diff.sections.len(), 1);
        assert_eq!(diff.sections[0].tag, "engine");
        match diff.sections[0].kind {
            DeltaKind::Changed {
                len_first,
                len_second,
                first_diff_offset,
            } => {
                assert_eq!(len_first, len_second);
                assert_eq!(first_diff_offset, 0);
            }
            ref other => panic!("expected Changed, got {other:?}"),
        }
        assert!(a.diff(&a).is_empty());
        assert!(a.diff(&a).to_string().contains("identical"));
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn intern_is_stable_and_deduplicating() {
        let a = intern("snapshot.test.name");
        let b = intern("snapshot.test.name");
        assert_eq!(a, b);
        assert!(std::ptr::eq(a, b));
    }
}
