//! Random distributions used by the models.
//!
//! Only `rand` itself is a sanctioned dependency, so the handful of
//! continuous distributions the simulation needs (Gaussian shadowing and
//! odometry noise, exponential fade depths) are implemented here from
//! first principles: Box–Muller for the normal, inverse-CDF for the
//! exponential. Both are exact methods, not approximations.

use rand::Rng;

/// A normal (Gaussian) distribution `N(mean, sigma²)`.
///
/// # Examples
///
/// ```
/// use cocoa_sim::dist::Normal;
/// use cocoa_sim::rng::SeedSplitter;
///
/// let n = Normal::new(5.0, 2.0);
/// let mut rng = SeedSplitter::new(1).stream("doc", 0);
/// let x = n.sample(&mut rng);
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    sigma: f64,
}

impl Normal {
    /// Creates `N(mean, sigma²)`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or either parameter is not finite.
    pub fn new(mean: f64, sigma: f64) -> Self {
        assert!(mean.is_finite(), "normal mean must be finite");
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "normal sigma must be finite and >= 0"
        );
        Normal { mean, sigma }
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Normal::new(0.0, 1.0)
    }

    /// The mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Draws one sample (Box–Muller transform).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.sigma == 0.0 {
            return self.mean;
        }
        // u1 in (0, 1] so ln(u1) is finite.
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.mean + self.sigma * r * theta.cos()
    }

    /// The probability density at `x`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is zero (the density is degenerate).
    pub fn pdf(&self, x: f64) -> f64 {
        assert!(self.sigma > 0.0, "pdf of a degenerate normal");
        let z = (x - self.mean) / self.sigma;
        (-0.5 * z * z).exp() / (self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }
}

/// An exponential distribution with the given mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Creates an exponential distribution with mean `mean` (rate `1/mean`).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive and finite.
    pub fn new(mean: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be positive"
        );
        Exponential { mean }
    }

    /// The mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Draws one sample (inverse CDF).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = 1.0 - rng.gen::<f64>(); // in (0, 1]
        -self.mean * u.ln()
    }
}

/// Draws from the uniform distribution over `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi` or the bounds are not finite.
pub fn uniform<R: Rng + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
    assert!(
        lo.is_finite() && hi.is_finite() && lo < hi,
        "invalid uniform bounds [{lo}, {hi})"
    );
    lo + (hi - lo) * rng.gen::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedSplitter;

    fn moments(samples: &[f64]) -> (f64, f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n;
        let sd = var.sqrt();
        let skew = samples
            .iter()
            .map(|s| ((s - mean) / sd).powi(3))
            .sum::<f64>()
            / n;
        (mean, sd, skew)
    }

    #[test]
    fn normal_moments_match() {
        let mut rng = SeedSplitter::new(3).stream("dist", 0);
        let d = Normal::new(-52.0, 3.0);
        let samples: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, sd, skew) = moments(&samples);
        assert!((mean + 52.0).abs() < 0.05, "mean {mean}");
        assert!((sd - 3.0).abs() < 0.05, "sd {sd}");
        assert!(skew.abs() < 0.05, "skew {skew}");
    }

    #[test]
    fn normal_zero_sigma_is_constant() {
        let mut rng = SeedSplitter::new(3).stream("dist", 1);
        let d = Normal::new(7.0, 0.0);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 7.0);
        }
    }

    #[test]
    fn normal_pdf_is_correct_shape() {
        let d = Normal::new(0.0, 1.0);
        // Peak value of the standard normal.
        assert!((d.pdf(0.0) - 0.398_942_280_4).abs() < 1e-9);
        // Symmetry.
        assert!((d.pdf(1.3) - d.pdf(-1.3)).abs() < 1e-12);
        // Monotone decay in the tail.
        assert!(d.pdf(1.0) > d.pdf(2.0));
    }

    #[test]
    #[should_panic(expected = "sigma")]
    fn normal_rejects_negative_sigma() {
        let _ = Normal::new(0.0, -1.0);
    }

    #[test]
    fn exponential_moments_match() {
        let mut rng = SeedSplitter::new(4).stream("dist", 0);
        let d = Exponential::new(6.0);
        let samples: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, sd, skew) = moments(&samples);
        assert!((mean - 6.0).abs() < 0.1, "mean {mean}");
        assert!((sd - 6.0).abs() < 0.15, "sd {sd}");
        // Exponential skewness is 2.
        assert!((skew - 2.0).abs() < 0.2, "skew {skew}");
        assert!(samples.iter().all(|&s| s >= 0.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_rejects_zero_mean() {
        let _ = Exponential::new(0.0);
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let mut rng = SeedSplitter::new(5).stream("dist", 0);
        for _ in 0..10_000 {
            let x = uniform(0.1, 2.0, &mut rng);
            assert!((0.1..2.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "invalid uniform bounds")]
    fn uniform_rejects_inverted() {
        let mut rng = SeedSplitter::new(5).stream("dist", 1);
        let _ = uniform(2.0, 1.0, &mut rng);
    }
}
