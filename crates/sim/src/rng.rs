//! Deterministic random-number streams.
//!
//! Every experiment takes a single master seed; independent, reproducible
//! sub-streams (one per robot, one for the channel, one for mobility, …) are
//! derived from it with a SplitMix64 mix so that adding a consumer never
//! perturbs the draws seen by existing consumers.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG handed to every model component.
///
/// `StdRng` (ChaCha-based) is specified to be reproducible across platforms
/// and `rand` patch releases, which is what makes the figures in
/// EXPERIMENTS.md bit-reproducible.
pub type DetRng = StdRng;

/// SplitMix64 finalizer; a high-quality 64-bit mixing function.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives independent RNG streams from one master seed.
///
/// Streams are identified by a `(domain, index)` pair — e.g. domain
/// `"odometry"`, index = robot id — so call sites are self-describing and
/// collisions between subsystems are impossible by construction.
///
/// # Examples
///
/// ```
/// use cocoa_sim::rng::SeedSplitter;
/// use rand::Rng;
///
/// let splitter = SeedSplitter::new(42);
/// let mut a = splitter.stream("mobility", 0);
/// let mut b = splitter.stream("mobility", 1);
/// let mut a2 = SeedSplitter::new(42).stream("mobility", 0);
/// assert_eq!(a.gen::<u64>(), a2.gen::<u64>());   // reproducible
/// assert_ne!(a.gen::<u64>(), b.gen::<u64>());    // independent
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSplitter {
    master: u64,
}

impl SeedSplitter {
    /// Creates a splitter from a master seed.
    pub fn new(master: u64) -> Self {
        SeedSplitter { master }
    }

    /// The master seed this splitter was built from.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Derives the 256-bit seed for stream `(domain, index)`.
    pub fn seed_for(&self, domain: &str, index: u64) -> [u8; 32] {
        // Fold the domain string into a 64-bit tag (FNV-1a), then mix the
        // triple (master, tag, index) through SplitMix64 four times with
        // different counters to fill 256 bits.
        let mut tag: u64 = 0xcbf2_9ce4_8422_2325;
        for b in domain.as_bytes() {
            tag ^= u64::from(*b);
            tag = tag.wrapping_mul(0x1000_0000_01b3);
        }
        let base = splitmix64(
            self.master ^ splitmix64(tag) ^ splitmix64(index.wrapping_mul(0xA5A5_A5A5_A5A5_A5A5)),
        );
        let mut seed = [0u8; 32];
        for (i, chunk) in seed.chunks_exact_mut(8).enumerate() {
            let word = splitmix64(base.wrapping_add(i as u64 + 1));
            chunk.copy_from_slice(&word.to_le_bytes());
        }
        seed
    }

    /// Creates the deterministic RNG for stream `(domain, index)`.
    pub fn stream(&self, domain: &str, index: u64) -> DetRng {
        DetRng::from_seed(self.seed_for(domain, index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_inputs_same_stream() {
        let s = SeedSplitter::new(7);
        let xs: Vec<u64> = (0..8).map(|_| 0u64).collect();
        let mut r1 = s.stream("channel", 3);
        let mut r2 = SeedSplitter::new(7).stream("channel", 3);
        let a: Vec<u64> = xs.iter().map(|_| r1.gen()).collect();
        let b: Vec<u64> = xs.iter().map(|_| r2.gen()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_domains_differ() {
        let s = SeedSplitter::new(7);
        let mut r1 = s.stream("channel", 0);
        let mut r2 = s.stream("mobility", 0);
        assert_ne!(r1.gen::<u64>(), r2.gen::<u64>());
    }

    #[test]
    fn different_indices_differ() {
        let s = SeedSplitter::new(7);
        let mut r1 = s.stream("robot", 1);
        let mut r2 = s.stream("robot", 2);
        assert_ne!(r1.gen::<u64>(), r2.gen::<u64>());
    }

    #[test]
    fn different_masters_differ() {
        let mut r1 = SeedSplitter::new(1).stream("x", 0);
        let mut r2 = SeedSplitter::new(2).stream("x", 0);
        assert_ne!(r1.gen::<u64>(), r2.gen::<u64>());
    }

    #[test]
    fn seeds_fill_all_words() {
        let seed = SeedSplitter::new(0).seed_for("", 0);
        // No 8-byte word should be zero (astronomically unlikely if mixing
        // works); guards against accidentally seeding with zeros.
        for chunk in seed.chunks_exact(8) {
            assert_ne!(u64::from_le_bytes(chunk.try_into().unwrap()), 0);
        }
    }
}
