//! The pending-event set: a priority queue ordered by simulation time with
//! stable FIFO tie-breaking.
//!
//! Glomosim (the simulator the paper used) is a classic event-list
//! simulator; this module is the equivalent core data structure. Events
//! scheduled for the same instant are delivered in the order they were
//! scheduled, which keeps runs deterministic regardless of heap internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Opaque handle identifying a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    cancelled: bool,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. seq breaks ties FIFO.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of simulation events carrying payloads of type `E`.
///
/// # Examples
///
/// ```
/// use cocoa_sim::event::EventQueue;
/// use cocoa_sim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "second");
/// q.push(SimTime::from_secs(1), "first");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t, e), (SimTime::from_secs(1), "first"));
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    // Number of live (non-cancelled) events; keeps len()/is_empty() O(1).
    live: usize,
    peak_live: usize,
    cancelled: Vec<u64>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            live: 0,
            peak_live: 0,
            cancelled: Vec::new(),
        }
    }

    /// Schedules `payload` for delivery at `time` and returns a handle that
    /// can later be passed to [`EventQueue::cancel`].
    pub fn push(&mut self, time: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled {
            time,
            seq,
            cancelled: false,
            payload,
        });
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        EventId(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Cancellation is lazy: the entry stays in the heap but is skipped when
    /// popped. Returns `true` if the id was not already cancelled or
    /// delivered. Cancelling an unknown or already-popped id returns `false`.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        if self.cancelled.contains(&id.0) {
            return false;
        }
        // We cannot reach into the heap; record the id and filter on pop.
        // `live` may briefly over-count if the event was already delivered,
        // so guard by scanning the heap only in debug builds.
        let present = self.heap.iter().any(|s| s.seq == id.0 && !s.cancelled);
        if present {
            self.cancelled.push(id.0);
            self.live -= 1;
            true
        } else {
            false
        }
    }

    /// Removes and returns the earliest live event, as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(s) = self.heap.pop() {
            if let Some(pos) = self.cancelled.iter().position(|&c| c == s.seq) {
                self.cancelled.swap_remove(pos);
                continue;
            }
            self.live -= 1;
            return Some((s.time, s.payload));
        }
        None
    }

    /// The time of the earliest live event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap
            .iter()
            .filter(|s| !self.cancelled.contains(&s.seq))
            .map(|s| (s.time, s.seq))
            .min()
            .map(|(t, _)| t)
    }

    /// Number of live (non-cancelled, undelivered) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The highest number of live events ever pending at once.
    pub fn peak_len(&self) -> usize {
        self.peak_live
    }

    /// The sequence number the next [`EventQueue::push`] will be assigned.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Consumes the queue and returns every live event sorted by
    /// `(time, seq)` — the exact delivery order — with each event's
    /// original sequence number. Cancelled entries are dropped.
    ///
    /// This is the deterministic iteration the snapshot codec needs: the
    /// heap's internal layout never leaks into serialized bytes.
    pub fn drain_sorted(mut self) -> Vec<(SimTime, u64, E)> {
        let mut out: Vec<(SimTime, u64, E)> = Vec::with_capacity(self.live);
        while let Some(s) = self.heap.pop() {
            if let Some(pos) = self.cancelled.iter().position(|&c| c == s.seq) {
                self.cancelled.swap_remove(pos);
                continue;
            }
            out.push((s.time, s.seq, s.payload));
        }
        // BinaryHeap pops earliest-first under the inverted Ord, so `out`
        // is already (time, seq)-sorted; assert rather than re-sort.
        debug_assert!(out.windows(2).all(|w| (w[0].0, w[0].1) <= (w[1].0, w[1].1)));
        out
    }

    /// Rebuilds a queue from events previously produced by
    /// [`EventQueue::drain_sorted`], preserving each event's original
    /// sequence number (so FIFO tie-breaks replay identically), the
    /// `next_seq` allocator position, and the `peak_len` high-water mark.
    ///
    /// # Panics
    ///
    /// Panics if an event's seq is not below `next_seq`, or if `peak_len`
    /// is less than the number of restored events — both indicate a
    /// corrupted or hand-rolled snapshot.
    pub fn from_parts(events: Vec<(SimTime, u64, E)>, next_seq: u64, peak_len: usize) -> Self {
        assert!(
            peak_len >= events.len(),
            "peak_len {} below live event count {}",
            peak_len,
            events.len()
        );
        let mut heap = BinaryHeap::with_capacity(events.len());
        let live = events.len();
        for (time, seq, payload) in events {
            assert!(
                seq < next_seq,
                "event seq {seq} not below next_seq {next_seq}"
            );
            heap.push(Scheduled {
                time,
                seq,
                cancelled: false,
                payload,
            });
        }
        EventQueue {
            heap,
            next_seq,
            live,
            peak_live: peak_len,
            cancelled: Vec::new(),
        }
    }
}

impl<E: std::fmt::Debug> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("live", &self.live)
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), 3u32);
        q.push(SimTime::from_secs(1), 1);
        q.push(SimTime::from_secs(2), 2);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..100u32 {
            q.push(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let _a = q.push(SimTime::from_secs(1), "a");
        let b = q.push(SimTime::from_secs(2), "b");
        let _c = q.push(SimTime::from_secs(3), "c");
        assert!(q.cancel(b));
        assert_eq!(q.len(), 2);
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "c"]);
    }

    #[test]
    fn cancel_is_idempotent_and_rejects_unknown() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime::from_secs(1), ());
        assert!(q.cancel(a));
        assert!(!q.cancel(a));
        assert!(!q.cancel(EventId(999)));
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancel_after_pop_returns_false() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime::from_secs(1), ());
        assert!(q.pop().is_some());
        assert!(!q.cancel(a));
    }

    #[test]
    fn peek_time_ignores_cancelled() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime::from_secs(1), ());
        q.push(SimTime::from_secs(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO, ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn drain_sorted_yields_delivery_order_and_skips_cancelled() {
        let mut q = EventQueue::new();
        let _late = q.push(SimTime::from_secs(3), "late"); // seq 0
        let _a = q.push(SimTime::from_secs(1), "a"); // seq 1
        let _b = q.push(SimTime::from_secs(1), "b"); // seq 2, FIFO tie with a
        let x = q.push(SimTime::from_secs(2), "x"); // seq 3, cancelled below
        q.cancel(x);
        let drained = q.drain_sorted();
        let seqs: Vec<u64> = drained.iter().map(|&(_, s, _)| s).collect();
        let payloads: Vec<&str> = drained.iter().map(|&(_, _, p)| p).collect();
        assert_eq!(payloads, vec!["a", "b", "late"]);
        assert_eq!(seqs, vec![1, 2, 0]);
    }

    #[test]
    fn from_parts_round_trips_order_and_accounting() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(2), 20u32);
        q.push(SimTime::from_secs(1), 10);
        q.push(SimTime::from_secs(1), 11); // same time: FIFO after 10
        q.pop(); // deliver 10, so peak (3) > live (2)
        let next_seq = q.next_seq();
        let peak = q.peak_len();
        let drained = q.drain_sorted();
        let mut r = EventQueue::from_parts(drained, next_seq, peak);
        assert_eq!(r.len(), 2);
        assert_eq!(r.peak_len(), peak);
        assert_eq!(r.next_seq(), next_seq);
        // FIFO tie-break replays identically after the round trip.
        let order: Vec<u32> = std::iter::from_fn(|| r.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![11, 20]);
        // New pushes continue the original seq allocation.
        let mut r2 = EventQueue::from_parts(Vec::<(SimTime, u64, u32)>::new(), 5, 7);
        let id = r2.push(SimTime::ZERO, 1);
        assert!(r2.cancel(id));
    }

    #[test]
    fn restoring_empty_queue_at_final_event_is_exact() {
        // A run snapshotted at its very last event has nothing pending:
        // the restored queue must be empty but keep the run's accounting.
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1), ());
        q.push(SimTime::from_secs(2), ());
        q.pop();
        q.pop();
        assert!(q.is_empty());
        let next_seq = q.next_seq();
        let peak = q.peak_len();
        let r = EventQueue::from_parts(q.drain_sorted(), next_seq, peak);
        assert!(r.is_empty());
        assert_eq!(r.peek_time(), None);
        assert_eq!(r.peak_len(), peak);
        assert_eq!(r.next_seq(), next_seq);
    }

    #[test]
    fn peak_len_is_high_water_mark() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO, ());
        q.pop();
        q.push(SimTime::ZERO, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peak_len(), 2);
        q.pop();
        q.pop();
        assert_eq!(q.peak_len(), 2);
    }
}
