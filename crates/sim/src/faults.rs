//! Deterministic fault injection: seeded, schedulable fault plans.
//!
//! CoCoA's premise is a lossy mobile ad-hoc network, so the interesting
//! questions start where the benign channel model stops: what happens when
//! a robot crashes mid-run, when the Sync robot dies, when the radio hits a
//! burst of deep fades, when a faulty node broadcasts garbage? This module
//! provides the vocabulary for those experiments as *data*: a [`FaultPlan`]
//! is an ordered list of timestamped [`Fault`]s that the simulation runner
//! consumes as ordinary events, so a fault schedule is exactly as
//! reproducible as everything else in the engine — same seed, same plan,
//! bit-identical run.
//!
//! The crate deliberately knows nothing about robots or packets; the upper
//! layers interpret each fault kind. What lives here is the schedule, the
//! [`GilbertElliott`] two-state burst-loss process, and the byte-garbling
//! helper used to model frame corruption.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// One injectable fault, interpreted by the simulation runner.
///
/// Robot indices refer to positions in the team vector. Start/end pairs
/// bracket an interval during which the fault condition holds; an interval
/// left open simply lasts until the end of the run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Fault {
    /// The robot halts: radio off, motion frozen, no beacons, no mesh.
    Crash {
        /// Index of the robot that fails.
        robot: usize,
    },
    /// A crashed robot comes back: radio on, estimator state lost.
    Reboot {
        /// Index of the robot that restarts.
        robot: usize,
    },
    /// The robot's crystal steps by `delta_ppm` parts per million
    /// (temperature shock, voltage sag). Accumulated error is preserved.
    ClockSkewStep {
        /// Index of the affected robot.
        robot: usize,
        /// Skew change, ppm. May be negative.
        delta_ppm: f64,
    },
    /// Start corrupting this robot's transmitted frames (failing RF
    /// front-end): random bit flips on the encoded bytes.
    GarbleTxStart {
        /// Index of the faulty transmitter.
        robot: usize,
    },
    /// The transmitter recovers.
    GarbleTxEnd {
        /// Index of the recovered transmitter.
        robot: usize,
    },
    /// The robot starts advertising wrong coordinates in its beacons (a
    /// faulty equipped robot — the paper's "bad beacons" made systematic).
    BeaconOffsetStart {
        /// Index of the faulty beacon source.
        robot: usize,
        /// Eastward coordinate error, metres.
        dx_m: f64,
        /// Northward coordinate error, metres.
        dy_m: f64,
    },
    /// The beacon source recovers.
    BeaconOffsetEnd {
        /// Index of the recovered beacon source.
        robot: usize,
    },
    /// Layer a [`GilbertElliott`] burst-loss process over every link.
    BurstLossStart {
        /// The two-state loss model applied per receiver.
        model: GilbertElliott,
    },
    /// Remove the burst-loss overlay.
    BurstLossEnd,
}

impl Fault {
    /// The robot index this fault targets, if it targets one.
    pub fn robot(&self) -> Option<usize> {
        match self {
            Fault::Crash { robot }
            | Fault::Reboot { robot }
            | Fault::ClockSkewStep { robot, .. }
            | Fault::GarbleTxStart { robot }
            | Fault::GarbleTxEnd { robot }
            | Fault::BeaconOffsetStart { robot, .. }
            | Fault::BeaconOffsetEnd { robot } => Some(*robot),
            Fault::BurstLossStart { .. } | Fault::BurstLossEnd => None,
        }
    }
}

/// A fault with its injection time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the fault fires.
    pub at: SimTime,
    /// What happens.
    pub fault: Fault,
}

/// An ordered, validated schedule of faults for one run.
///
/// Events are kept sorted by time (ties preserve insertion order), so the
/// runner can schedule them directly and two identically-built plans drive
/// identical runs.
///
/// # Examples
///
/// ```
/// use cocoa_sim::faults::{Fault, FaultPlan};
/// use cocoa_sim::time::SimTime;
///
/// let mut plan = FaultPlan::new();
/// plan.schedule(SimTime::from_secs(150), Fault::Crash { robot: 0 });
/// plan.schedule(SimTime::from_secs(60), Fault::GarbleTxStart { robot: 1 });
/// assert_eq!(plan.events()[0].at, SimTime::from_secs(60)); // sorted
/// assert!(plan.validate(2).is_ok());
/// assert!(plan.validate(1).is_err()); // robot 1 out of range
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

/// Names accepted by [`FaultPlan::preset`].
pub const PRESET_NAMES: &[&str] = &["none", "sync-crash", "burst30", "corrupt", "chaos"];

impl FaultPlan {
    /// Creates an empty plan (the benign baseline).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The schedule, sorted by time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Adds a fault at `at`, keeping the schedule sorted (stable for ties).
    pub fn schedule(&mut self, at: SimTime, fault: Fault) -> &mut Self {
        let pos = self.events.partition_point(|e| e.at <= at);
        self.events.insert(pos, FaultEvent { at, fault });
        self
    }

    /// Checks the plan against a team of `num_robots`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first out-of-range robot index or
    /// invalid burst-loss model.
    pub fn validate(&self, num_robots: usize) -> Result<(), String> {
        for e in &self.events {
            if let Some(r) = e.fault.robot() {
                if r >= num_robots {
                    return Err(format!(
                        "fault at {} targets robot {r}, but the team has {num_robots}",
                        e.at
                    ));
                }
            }
            if let Fault::BurstLossStart { model } = &e.fault {
                model.validate()?;
            }
        }
        Ok(())
    }

    /// A canned schedule by name, scaled to the run.
    ///
    /// Known names (see [`PRESET_NAMES`]):
    ///
    /// - `none` — empty plan;
    /// - `sync-crash` — the Sync robot (index 0) crashes at T/2 and reboots
    ///   at 9T/10;
    /// - `burst30` — a Gilbert–Elliott overlay with ≈30 % mean loss from
    ///   T/5 to the end of the run;
    /// - `corrupt` — one robot garbles its frames over the middle half of
    ///   the run while another advertises coordinates 30 m off;
    /// - `chaos` — all of the above plus a 150 ppm clock-skew step.
    ///
    /// Robot indices are clamped into the team, so presets stay valid at
    /// any scale. Returns `None` for unknown names.
    pub fn preset(name: &str, duration: SimDuration, num_robots: usize) -> Option<FaultPlan> {
        let t = |frac_num: u64, frac_den: u64| SimTime::ZERO + (duration * frac_num) / frac_den;
        let robot = |i: usize| i.min(num_robots.saturating_sub(1));
        let mut plan = FaultPlan::new();
        match name {
            "none" => {}
            "sync-crash" => {
                plan.schedule(t(1, 2), Fault::Crash { robot: 0 })
                    .schedule(t(9, 10), Fault::Reboot { robot: 0 });
            }
            "burst30" => {
                plan.schedule(
                    t(1, 5),
                    Fault::BurstLossStart {
                        model: GilbertElliott::bursty(0.3, 8.0),
                    },
                );
            }
            "corrupt" => {
                plan.schedule(t(1, 4), Fault::GarbleTxStart { robot: robot(1) })
                    .schedule(t(3, 4), Fault::GarbleTxEnd { robot: robot(1) })
                    .schedule(
                        t(1, 3),
                        Fault::BeaconOffsetStart {
                            robot: robot(2),
                            dx_m: 30.0,
                            dy_m: -22.0,
                        },
                    )
                    .schedule(t(2, 3), Fault::BeaconOffsetEnd { robot: robot(2) });
            }
            "chaos" => {
                plan.schedule(
                    t(1, 5),
                    Fault::BurstLossStart {
                        model: GilbertElliott::bursty(0.3, 8.0),
                    },
                )
                .schedule(t(1, 2), Fault::Crash { robot: 0 })
                .schedule(t(9, 10), Fault::Reboot { robot: 0 })
                .schedule(t(1, 4), Fault::GarbleTxStart { robot: robot(1) })
                .schedule(t(3, 4), Fault::GarbleTxEnd { robot: robot(1) })
                .schedule(
                    t(1, 3),
                    Fault::BeaconOffsetStart {
                        robot: robot(2),
                        dx_m: 30.0,
                        dy_m: -22.0,
                    },
                )
                .schedule(t(2, 3), Fault::BeaconOffsetEnd { robot: robot(2) })
                .schedule(
                    t(1, 3),
                    Fault::ClockSkewStep {
                        robot: robot(3),
                        delta_ppm: 150.0,
                    },
                );
            }
            _ => return None,
        }
        Some(plan)
    }
}

/// The Gilbert–Elliott two-state burst-loss model.
///
/// A link is in a *good* or *bad* state; each reception attempt first
/// transitions the state (a two-state Markov chain), then is lost with the
/// state's loss probability. This produces the time-correlated loss bursts
/// of real radio links — deep fades, passing obstructions — that the
/// memoryless `packet_loss` knob cannot.
///
/// # Examples
///
/// ```
/// use cocoa_sim::faults::GilbertElliott;
///
/// let ge = GilbertElliott::bursty(0.3, 8.0);
/// assert!((ge.mean_loss() - 0.3).abs() < 1e-9);
/// assert!(ge.validate().is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GilbertElliott {
    /// Probability of transitioning good → bad at each attempt.
    pub p_enter_bad: f64,
    /// Probability of transitioning bad → good at each attempt.
    pub p_exit_bad: f64,
    /// Loss probability while in the good state.
    pub loss_good: f64,
    /// Loss probability while in the bad state.
    pub loss_bad: f64,
}

impl GilbertElliott {
    /// Builds the classic bursty parameterization: lossless good state,
    /// fully-lossy bad state, mean burst length `mean_burst_len` attempts,
    /// and transition probabilities chosen so the stationary loss rate is
    /// `mean_loss`.
    ///
    /// # Panics
    ///
    /// Panics if `mean_loss` is outside `[0, 1)` or `mean_burst_len < 1`.
    pub fn bursty(mean_loss: f64, mean_burst_len: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&mean_loss),
            "mean loss {mean_loss} must be in [0, 1)"
        );
        assert!(
            mean_burst_len >= 1.0,
            "mean burst length {mean_burst_len} must be at least 1"
        );
        let p_exit_bad = 1.0 / mean_burst_len;
        // Stationary P(bad) = p_enter / (p_enter + p_exit) = mean_loss.
        let p_enter_bad = p_exit_bad * mean_loss / (1.0 - mean_loss);
        GilbertElliott {
            p_enter_bad: p_enter_bad.min(1.0),
            p_exit_bad,
            loss_good: 0.0,
            loss_bad: 1.0,
        }
    }

    /// Stationary probability of being in the bad state.
    pub fn stationary_bad(&self) -> f64 {
        let denom = self.p_enter_bad + self.p_exit_bad;
        if denom <= 0.0 {
            0.0
        } else {
            self.p_enter_bad / denom
        }
    }

    /// Long-run fraction of attempts lost.
    pub fn mean_loss(&self) -> f64 {
        let b = self.stationary_bad();
        (1.0 - b) * self.loss_good + b * self.loss_bad
    }

    /// Checks that every parameter is a probability.
    ///
    /// # Errors
    ///
    /// Returns a message naming the out-of-range parameter.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("p_enter_bad", self.p_enter_bad),
            ("p_exit_bad", self.p_exit_bad),
            ("loss_good", self.loss_good),
            ("loss_bad", self.loss_bad),
        ] {
            if !(0.0..=1.0).contains(&v) || !v.is_finite() {
                return Err(format!("Gilbert–Elliott {name} = {v} is not a probability"));
            }
        }
        Ok(())
    }
}

/// The evolving state of one Gilbert–Elliott link.
///
/// Stepped once per reception attempt; starts in the good state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliottLink {
    model: GilbertElliott,
    in_bad: bool,
}

impl GilbertElliottLink {
    /// Creates a link in the good state.
    pub fn new(model: GilbertElliott) -> Self {
        GilbertElliottLink {
            model,
            in_bad: false,
        }
    }

    /// Rebuilds a link mid-burst (checkpoint restore).
    pub fn with_state(model: GilbertElliott, in_bad: bool) -> Self {
        GilbertElliottLink { model, in_bad }
    }

    /// The loss model this link evolves under.
    pub fn model(&self) -> GilbertElliott {
        self.model
    }

    /// Whether the link is currently in the bad (bursting) state.
    pub fn in_bad(&self) -> bool {
        self.in_bad
    }

    /// Advances the chain one attempt and decides whether it is lost.
    pub fn drops(&mut self, rng: &mut impl Rng) -> bool {
        let flip = if self.in_bad {
            self.model.p_exit_bad
        } else {
            self.model.p_enter_bad
        };
        if flip > 0.0 && rng.gen_bool(flip.min(1.0)) {
            self.in_bad = !self.in_bad;
        }
        let loss = if self.in_bad {
            self.model.loss_bad
        } else {
            self.model.loss_good
        };
        loss > 0.0 && rng.gen_bool(loss.min(1.0))
    }
}

/// Flips 1–4 random bits of `bytes` in place (frame corruption model).
///
/// Empty buffers are left untouched. Deterministic for a given RNG state.
pub fn garble_bytes(bytes: &mut [u8], rng: &mut impl Rng) {
    if bytes.is_empty() {
        return;
    }
    let flips = 1 + (rng.gen::<u64>() % 4) as usize;
    for _ in 0..flips {
        let byte = (rng.gen::<u64>() as usize) % bytes.len();
        let bit = (rng.gen::<u64>() % 8) as u32;
        bytes[byte] ^= 1u8 << bit;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedSplitter;

    #[test]
    fn plan_keeps_events_sorted() {
        let mut plan = FaultPlan::new();
        plan.schedule(SimTime::from_secs(30), Fault::Crash { robot: 2 });
        plan.schedule(SimTime::from_secs(10), Fault::BurstLossEnd);
        plan.schedule(SimTime::from_secs(20), Fault::Reboot { robot: 2 });
        let times: Vec<u64> = plan.events().iter().map(|e| e.at.as_secs()).collect();
        assert_eq!(times, vec![10, 20, 30]);
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());
    }

    #[test]
    fn validate_rejects_out_of_range_robot() {
        let mut plan = FaultPlan::new();
        plan.schedule(SimTime::from_secs(1), Fault::Crash { robot: 9 });
        assert!(plan.validate(10).is_ok());
        assert!(plan.validate(9).is_err());
    }

    #[test]
    fn validate_rejects_bad_burst_model() {
        let mut plan = FaultPlan::new();
        plan.schedule(
            SimTime::from_secs(1),
            Fault::BurstLossStart {
                model: GilbertElliott {
                    p_enter_bad: 1.5,
                    p_exit_bad: 0.1,
                    loss_good: 0.0,
                    loss_bad: 1.0,
                },
            },
        );
        assert!(plan.validate(5).is_err());
    }

    #[test]
    fn presets_exist_and_validate() {
        let d = SimDuration::from_secs(600);
        for name in PRESET_NAMES {
            let plan = FaultPlan::preset(name, d, 10).expect("known preset");
            assert!(plan.validate(10).is_ok(), "preset {name} invalid");
        }
        assert!(FaultPlan::preset("nope", d, 10).is_none());
        assert!(FaultPlan::preset("none", d, 10).unwrap().is_empty());
    }

    #[test]
    fn presets_clamp_robot_indices_to_team() {
        let d = SimDuration::from_secs(600);
        let plan = FaultPlan::preset("chaos", d, 1).expect("preset");
        assert!(plan.validate(1).is_ok(), "single-robot team still valid");
    }

    #[test]
    fn bursty_hits_target_mean_loss() {
        let ge = GilbertElliott::bursty(0.3, 8.0);
        assert!((ge.mean_loss() - 0.3).abs() < 1e-12);
        assert!((ge.stationary_bad() - 0.3).abs() < 1e-12);
        assert!(ge.validate().is_ok());
    }

    #[test]
    fn link_long_run_loss_matches_model() {
        let ge = GilbertElliott::bursty(0.3, 8.0);
        let mut link = GilbertElliottLink::new(ge);
        let mut rng = SeedSplitter::new(11).stream("ge", 0);
        let n = 200_000;
        let lost = (0..n).filter(|_| link.drops(&mut rng)).count();
        let rate = lost as f64 / n as f64;
        assert!(
            (rate - 0.3).abs() < 0.02,
            "empirical loss {rate} far from 0.3"
        );
    }

    #[test]
    fn link_losses_are_bursty() {
        // Consecutive losses should be far more likely than under
        // independent loss at the same rate.
        let ge = GilbertElliott::bursty(0.3, 8.0);
        let mut link = GilbertElliottLink::new(ge);
        let mut rng = SeedSplitter::new(12).stream("ge", 0);
        let outcomes: Vec<bool> = (0..100_000).map(|_| link.drops(&mut rng)).collect();
        let mut pairs = 0usize;
        let mut loss_then = 0usize;
        for w in outcomes.windows(2) {
            if w[0] {
                pairs += 1;
                if w[1] {
                    loss_then += 1;
                }
            }
        }
        let p_loss_given_loss = loss_then as f64 / pairs as f64;
        assert!(
            p_loss_given_loss > 0.6,
            "loss-after-loss {p_loss_given_loss} not bursty"
        );
    }

    #[test]
    fn garble_flips_at_least_one_bit() {
        let mut rng = SeedSplitter::new(13).stream("garble", 0);
        for _ in 0..100 {
            let original = vec![0u8; 32];
            let mut garbled = original.clone();
            garble_bytes(&mut garbled, &mut rng);
            assert_ne!(original, garbled, "garbling must change the frame");
        }
        // Empty frames are a no-op, not a panic.
        garble_bytes(&mut [], &mut rng);
    }

    #[test]
    fn garbling_is_deterministic() {
        let mut a = SeedSplitter::new(14).stream("garble", 0);
        let mut b = SeedSplitter::new(14).stream("garble", 0);
        let mut x = vec![0xAAu8; 16];
        let mut y = vec![0xAAu8; 16];
        garble_bytes(&mut x, &mut a);
        garble_bytes(&mut y, &mut b);
        assert_eq!(x, y);
    }
}
