//! Lightweight structured tracing for simulation runs.
//!
//! A [`Trace`] is an append-only log of `(time, subsystem, message)` records
//! with a level filter and an optional bounded capacity (ring-buffer
//! behaviour). It is intentionally not a global logger: each run owns its
//! trace, so parallel parameter sweeps never interleave output.

use std::collections::VecDeque;
use std::fmt;

use crate::time::SimTime;

/// Severity/verbosity of a trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceLevel {
    /// High-volume per-event detail (packet receptions, grid updates).
    Debug,
    /// Normal protocol milestones (window starts, sync delivery).
    Info,
    /// Anomalies worth surfacing (dropped sync, empty beacon window).
    Warn,
}

impl fmt::Display for TraceLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceLevel::Debug => "DEBUG",
            TraceLevel::Info => "INFO",
            TraceLevel::Warn => "WARN",
        };
        f.write_str(s)
    }
}

/// One trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Simulation time at which the record was emitted.
    pub time: SimTime,
    /// Severity.
    pub level: TraceLevel,
    /// Emitting subsystem, e.g. `"mac"`, `"sync"`, `"bayes"`.
    pub subsystem: &'static str,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} {} {}] {}",
            self.time, self.level, self.subsystem, self.message
        )
    }
}

/// An owned, filterable, optionally bounded event log.
///
/// # Examples
///
/// ```
/// use cocoa_sim::trace::{Trace, TraceLevel};
/// use cocoa_sim::time::SimTime;
///
/// let mut trace = Trace::new(TraceLevel::Info);
/// trace.emit(SimTime::ZERO, TraceLevel::Debug, "mac", || "dropped".into());
/// trace.emit(SimTime::ZERO, TraceLevel::Warn, "sync", || "no sync".into());
/// assert_eq!(trace.records().count(), 1); // Debug filtered out
/// ```
#[derive(Debug)]
pub struct Trace {
    min_level: TraceLevel,
    capacity: Option<usize>,
    records: VecDeque<TraceRecord>,
    emitted: u64,
    dropped: u64,
}

impl Trace {
    /// Creates a trace keeping records at or above `min_level`, unbounded.
    pub fn new(min_level: TraceLevel) -> Self {
        Trace {
            min_level,
            capacity: None,
            records: VecDeque::new(),
            emitted: 0,
            dropped: 0,
        }
    }

    /// Creates a trace that retains at most `capacity` records, discarding
    /// the oldest when full (ring-buffer behaviour).
    pub fn with_capacity(min_level: TraceLevel, capacity: usize) -> Self {
        Trace {
            min_level,
            capacity: Some(capacity),
            records: VecDeque::with_capacity(capacity.min(4096)),
            emitted: 0,
            dropped: 0,
        }
    }

    /// A trace that records nothing (filter above the highest level is not
    /// expressible, so this keeps Warn only with zero capacity).
    pub fn disabled() -> Self {
        Trace::with_capacity(TraceLevel::Warn, 0)
    }

    /// Emits a record if `level` passes the filter. The message closure is
    /// only invoked when the record is kept, so hot paths pay nothing when
    /// filtered.
    pub fn emit(
        &mut self,
        time: SimTime,
        level: TraceLevel,
        subsystem: &'static str,
        message: impl FnOnce() -> String,
    ) {
        if level < self.min_level {
            return;
        }
        self.emitted += 1;
        if self.capacity == Some(0) {
            self.dropped += 1;
            return;
        }
        if let Some(cap) = self.capacity {
            if self.records.len() == cap {
                self.records.pop_front();
                self.dropped += 1;
            }
        }
        self.records.push_back(TraceRecord {
            time,
            level,
            subsystem,
            message: message(),
        });
    }

    /// Iterates over retained records in emission order.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Total records that passed the level filter (including discarded ones).
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Records discarded due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained records from `subsystem` only.
    pub fn by_subsystem<'a>(
        &'a self,
        subsystem: &'a str,
    ) -> impl Iterator<Item = &'a TraceRecord> + 'a {
        self.records
            .iter()
            .filter(move |r| r.subsystem == subsystem)
    }
}

impl Default for Trace {
    fn default() -> Self {
        Trace::new(TraceLevel::Info)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn level_filter_applies() {
        let mut t = Trace::new(TraceLevel::Warn);
        t.emit(at(0), TraceLevel::Debug, "a", || "x".into());
        t.emit(at(0), TraceLevel::Info, "a", || "y".into());
        t.emit(at(0), TraceLevel::Warn, "a", || "z".into());
        assert_eq!(t.records().count(), 1);
        assert_eq!(t.records().next().unwrap().message, "z");
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut t = Trace::with_capacity(TraceLevel::Debug, 2);
        for i in 0..5 {
            t.emit(at(i), TraceLevel::Info, "s", || format!("m{i}"));
        }
        let msgs: Vec<_> = t.records().map(|r| r.message.as_str()).collect();
        assert_eq!(msgs, vec!["m3", "m4"]);
        assert_eq!(t.dropped(), 3);
        assert_eq!(t.emitted(), 5);
    }

    #[test]
    fn disabled_records_nothing_but_counts() {
        let mut t = Trace::disabled();
        t.emit(at(0), TraceLevel::Warn, "s", || "m".into());
        assert_eq!(t.records().count(), 0);
        assert_eq!(t.emitted(), 1);
    }

    #[test]
    fn filtered_messages_are_not_built() {
        let mut t = Trace::new(TraceLevel::Warn);
        let mut built = false;
        t.emit(at(0), TraceLevel::Debug, "s", || {
            built = true;
            String::new()
        });
        assert!(!built);
    }

    #[test]
    fn by_subsystem_filters() {
        let mut t = Trace::new(TraceLevel::Debug);
        t.emit(at(0), TraceLevel::Info, "mac", || "1".into());
        t.emit(at(0), TraceLevel::Info, "sync", || "2".into());
        t.emit(at(1), TraceLevel::Info, "mac", || "3".into());
        assert_eq!(t.by_subsystem("mac").count(), 2);
    }

    #[test]
    fn display_is_nonempty() {
        let r = TraceRecord {
            time: at(1),
            level: TraceLevel::Info,
            subsystem: "mac",
            message: "hello".into(),
        };
        let s = r.to_string();
        assert!(s.contains("INFO") && s.contains("mac") && s.contains("hello"));
    }
}
