//! The run-scoped observability backbone: a typed, allocation-lean event
//! bus with per-subsystem counters, monotonic span timers and a
//! deterministic JSONL exporter.
//!
//! Every simulation run owns one [`Telemetry`] instance (no globals, so
//! parallel parameter sweeps via `map_bounded` never interleave), which
//! collects three kinds of data:
//!
//! 1. **Events** — a time-ordered stream of [`TelemetryEvent`] records
//!    (beacon tx/rx, grid updates, fixes, sync delivery/miss, radio state
//!    changes, fault injections, health transitions, periodic per-robot
//!    samples). Events are stamped with the simulation time and a stable
//!    sequence number, never with wall-clock time, so identical seeds
//!    produce byte-identical traces.
//! 2. **Counters** — named `u64` totals in a [`CounterRegistry`], exported
//!    in sorted order.
//! 3. **Spans** — wall-clock timers ([`SpanProfiler`]) that attribute run
//!    time to named subsystems (`grid.update`, `channel.sample`, …). Span
//!    durations are the *only* non-deterministic quantity the bus records;
//!    they are excluded from the deterministic JSONL stream unless
//!    explicitly requested.
//!
//! # Levels
//!
//! The bus is gated by a [`TelemetryLevel`]:
//!
//! | level      | counters | events + timelines | high-volume events + spans |
//! |------------|----------|--------------------|----------------------------|
//! | `Off`      | —        | —                  | —                          |
//! | `Counters` | ✓        | —                  | —                          |
//! | `Timeline` | ✓        | ✓                  | —                          |
//! | `Full`     | ✓        | ✓                  | ✓                          |
//!
//! At `Off`, every emission path is a single branch on the level — no
//! allocation, no closure invocation, no `Instant::now()` call — so
//! telemetry costs nothing when disabled.
//!
//! # Examples
//!
//! ```
//! use cocoa_sim::telemetry::{Telemetry, TelemetryEvent, TelemetryLevel};
//! use cocoa_sim::time::SimTime;
//!
//! let mut t = Telemetry::new(TelemetryLevel::Timeline);
//! t.emit(SimTime::from_secs(1), TelemetryEvent::WindowStart { window: 0 });
//! let fixes = t.counter("traffic.fixes");
//! t.bump(fixes);
//! assert_eq!(t.events().count(), 1);
//! assert_eq!(t.counters().get("traffic.fixes"), Some(1));
//! ```

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::time::Instant;

use crate::jsonfmt::{escape_json, write_opt_f64};
use crate::time::{SimDuration, SimTime};
use crate::trace::{Trace, TraceLevel};

pub mod export;
pub mod hist;

use hist::{HistId, Histogram, HistogramRegistry};

/// Version of the JSONL trace schema emitted by [`Telemetry::to_jsonl`].
pub const TRACE_SCHEMA_VERSION: u32 = 1;

/// How much the bus records. Ordered: each level includes everything the
/// previous one records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum TelemetryLevel {
    /// Record nothing; every hook is a single branch.
    #[default]
    Off,
    /// Per-subsystem counters only.
    Counters,
    /// Counters plus protocol events and periodic per-robot samples.
    Timeline,
    /// Everything: per-packet events and wall-clock span timers too.
    Full,
}

impl TelemetryLevel {
    /// Parses the CLI spelling of a level.
    pub fn parse(s: &str) -> Option<TelemetryLevel> {
        match s {
            "off" => Some(TelemetryLevel::Off),
            "counters" => Some(TelemetryLevel::Counters),
            "timeline" => Some(TelemetryLevel::Timeline),
            "full" => Some(TelemetryLevel::Full),
            _ => None,
        }
    }

    /// The CLI spelling of this level.
    pub fn as_str(&self) -> &'static str {
        match self {
            TelemetryLevel::Off => "off",
            TelemetryLevel::Counters => "counters",
            TelemetryLevel::Timeline => "timeline",
            TelemetryLevel::Full => "full",
        }
    }
}

impl std::fmt::Display for TelemetryLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One typed event on the bus.
///
/// Robot indices are `u32` and subsystem states are `&'static str` so the
/// simulation kernel stays decoupled from the protocol crates that define
/// the richer types. Every variant except [`TelemetryEvent::Legacy`] is
/// allocation-free.
#[derive(Debug, Clone, PartialEq)]
pub enum TelemetryEvent {
    /// A beacon period starts on the coordinator's reference timeline.
    WindowStart {
        /// Window index.
        window: u64,
    },
    /// A localization beacon was put on the air.
    BeaconTx {
        /// Transmitting robot.
        robot: u32,
        /// Advertised x coordinate, metres.
        x_m: f64,
        /// Advertised y coordinate, metres.
        y_m: f64,
    },
    /// A beacon reached a localizer.
    BeaconRx {
        /// Receiving robot.
        robot: u32,
        /// Beacon source.
        from: u32,
        /// Received signal strength, dBm.
        rssi_dbm: f64,
        /// What the estimator did with it (`"applied"`, `"outlier"`,
        /// `"rejected"`, `"no_pdf"`).
        outcome: &'static str,
    },
    /// A beacon refined a robot's posterior grid.
    GridUpdate {
        /// Robot whose grid was updated.
        robot: u32,
    },
    /// A transmit window produced a fresh RF fix.
    Fix {
        /// Robot that fixed.
        robot: u32,
        /// Window index.
        window: u64,
        /// Fix x coordinate, metres.
        x_m: f64,
        /// Fix y coordinate, metres.
        y_m: f64,
        /// Distance from ground truth, metres.
        err_m: f64,
    },
    /// The entropy watchdog vetoed a near-uniform posterior.
    FlatPosterior {
        /// Affected robot.
        robot: u32,
        /// Window index.
        window: u64,
        /// Posterior entropy, nats.
        entropy: f64,
        /// Watchdog threshold, nats.
        threshold: f64,
    },
    /// A robot was awake but received fewer than the minimum beacons.
    StarvedWindow {
        /// Affected robot.
        robot: u32,
        /// Window index.
        window: u64,
    },
    /// A SYNC message reached a robot during its window.
    SyncDelivered {
        /// Receiving robot.
        robot: u32,
        /// Window index.
        window: u64,
    },
    /// A robot's window closed without a SYNC.
    SyncMissed {
        /// Affected robot.
        robot: u32,
        /// Window index.
        window: u64,
    },
    /// The team elected a new Sync timebase.
    Failover {
        /// Index of the newly elected timebase robot.
        new_sync: u32,
    },
    /// An MRMM node suppressed a JOIN QUERY rebroadcast: the link was
    /// predicted too short-lived and enough redundant copies were heard.
    MeshPrune {
        /// Pruning robot.
        robot: u32,
        /// Source of the pruned query round.
        source: u32,
        /// Sequence number of the pruned query round.
        seq: u32,
    },
    /// A radio changed power state.
    RadioState {
        /// Robot whose radio transitioned.
        robot: u32,
        /// New state (`"idle"`, `"sleep"`, `"off"`).
        state: &'static str,
    },
    /// An injected fault fired.
    FaultInjected {
        /// Fault kind (`"crash"`, `"reboot"`, `"burst_loss_start"`, …).
        kind: &'static str,
        /// Targeted robot, if the fault targets one.
        robot: Option<u32>,
    },
    /// A robot's degradation state changed.
    HealthTransition {
        /// Affected robot.
        robot: u32,
        /// New state (`"healthy"`, `"degraded"`, `"dead-reckoning"`,
        /// `"down"`).
        state: &'static str,
    },
    /// Periodic per-robot timeline sample.
    RobotSample {
        /// Sampled robot.
        robot: u32,
        /// Ground-truth x, metres.
        true_x_m: f64,
        /// Ground-truth y, metres.
        true_y_m: f64,
        /// Estimated x, metres.
        est_x_m: f64,
        /// Estimated y, metres.
        est_y_m: f64,
        /// Localization error, metres.
        err_m: f64,
        /// Posterior entropy as a fraction of the maximum (RF robots only).
        entropy_frac: Option<f64>,
        /// Total energy consumed so far, joules.
        energy_j: f64,
        /// Radio power state.
        radio: &'static str,
        /// Degradation state.
        health: &'static str,
    },
    /// Periodic team-level sample mirroring the metrics error series.
    TeamSample {
        /// Mean localization error over reporting robots, metres.
        mean_err_m: f64,
        /// Robots that contributed.
        robots: u32,
        /// Team energy consumed so far, joules.
        energy_j: f64,
    },
    /// A run-state snapshot was serialized at this instant.
    ///
    /// Emitted *after* the telemetry section is captured, so the snapshot
    /// bytes never contain their own marker and a resumed run stays
    /// byte-identical to an uninterrupted one.
    SnapshotTaken {
        /// Size of the serialized snapshot.
        bytes: u64,
        /// Number of codec sections written.
        sections: u32,
    },
    /// The run was restored from a snapshot at this instant (only the
    /// marked resume path emits this; the quiet path used by equivalence
    /// tests and warm-start forks leaves the restored bus untouched).
    SnapshotRestored {
        /// Size of the snapshot the run was restored from.
        bytes: u64,
    },
    /// A record routed through from the legacy string [`Trace`].
    Legacy {
        /// Severity.
        level: TraceLevel,
        /// Emitting subsystem.
        subsystem: &'static str,
        /// Human-readable message.
        message: String,
    },
}

impl TelemetryEvent {
    /// The stable machine name of this event kind (the JSONL `kind` field).
    pub fn kind(&self) -> &'static str {
        match self {
            TelemetryEvent::WindowStart { .. } => "window_start",
            TelemetryEvent::BeaconTx { .. } => "beacon_tx",
            TelemetryEvent::BeaconRx { .. } => "beacon_rx",
            TelemetryEvent::GridUpdate { .. } => "grid_update",
            TelemetryEvent::Fix { .. } => "fix",
            TelemetryEvent::FlatPosterior { .. } => "flat_posterior",
            TelemetryEvent::StarvedWindow { .. } => "starved_window",
            TelemetryEvent::SyncDelivered { .. } => "sync_delivered",
            TelemetryEvent::SyncMissed { .. } => "sync_missed",
            TelemetryEvent::Failover { .. } => "failover",
            TelemetryEvent::MeshPrune { .. } => "mesh_prune",
            TelemetryEvent::RadioState { .. } => "radio_state",
            TelemetryEvent::FaultInjected { .. } => "fault",
            TelemetryEvent::HealthTransition { .. } => "health",
            TelemetryEvent::RobotSample { .. } => "robot_sample",
            TelemetryEvent::TeamSample { .. } => "team_sample",
            TelemetryEvent::SnapshotTaken { .. } => "snapshot_taken",
            TelemetryEvent::SnapshotRestored { .. } => "snapshot_restored",
            TelemetryEvent::Legacy { .. } => "legacy",
        }
    }
}

/// An event stamped with simulation time and a stable sequence number.
#[derive(Debug, Clone, PartialEq)]
pub struct StampedEvent {
    /// Simulation time of emission, microseconds.
    pub t_us: u64,
    /// Monotonic per-run sequence number (total emission order).
    pub seq: u64,
    /// The payload.
    pub event: TelemetryEvent,
}

/// Checkpointed bus state for [`Telemetry::from_checkpoint`]: everything
/// deterministic the bus carries — wall-clock span timers and wall
/// histograms are deliberately absent.
#[derive(Debug)]
pub struct TelemetryCheckpoint {
    /// The recording level.
    pub level: TelemetryLevel,
    /// Ring-buffer capacity bound, if one was set.
    pub capacity: Option<usize>,
    /// Next sequence number to assign.
    pub seq: u64,
    /// Events evicted before the capture.
    pub dropped: u64,
    /// Per-robot timeline sampling interval, if configured.
    pub sample_interval: Option<SimDuration>,
    /// The retained event window.
    pub events: Vec<StampedEvent>,
    /// Counter values by name.
    pub counters: Vec<(&'static str, u64)>,
    /// Deterministic histogram states by name.
    pub hists: Vec<(&'static str, Histogram)>,
}

/// Handle to one registered counter (index into the registry, `Copy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Named `u64` counters with stable, sorted export order.
///
/// Registration returns a [`CounterId`] so hot paths bump by index instead
/// of hashing a name.
#[derive(Debug, Default)]
pub struct CounterRegistry {
    names: Vec<&'static str>,
    values: Vec<u64>,
}

impl CounterRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `name` (idempotent) and returns its handle.
    pub fn register(&mut self, name: &'static str) -> CounterId {
        if let Some(i) = self.names.iter().position(|n| *n == name) {
            return CounterId(i);
        }
        self.names.push(name);
        self.values.push(0);
        CounterId(self.names.len() - 1)
    }

    /// Adds `n` to a registered counter.
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.values[id.0] += n;
    }

    /// Increments a registered counter by one.
    pub fn bump(&mut self, id: CounterId) {
        self.values[id.0] += 1;
    }

    /// Registers `name` if needed and sets its value (end-of-run
    /// absorption of subsystem statistics).
    pub fn set(&mut self, name: &'static str, value: u64) {
        let id = self.register(name);
        self.values[id.0] = value;
    }

    /// The current value of `name`, if registered.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.names
            .iter()
            .position(|n| *n == name)
            .map(|i| self.values[i])
    }

    /// Number of registered counters.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no counters are registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All counters sorted by name (deterministic export order).
    pub fn sorted(&self) -> Vec<(&'static str, u64)> {
        let mut out: Vec<(&'static str, u64)> = self
            .names
            .iter()
            .copied()
            .zip(self.values.iter().copied())
            .collect();
        out.sort_by_key(|(n, _)| *n);
        out
    }
}

/// Handle to one registered span (index into the profiler, `Copy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(usize);

/// The start token of an open span: `Some` only when spans are enabled,
/// so closing it is free when telemetry is off.
pub type SpanStart = Option<Instant>;

/// One profiled span's accumulated totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanStat {
    /// Span name, dot-separated by convention (`"grid.update"`,
    /// `"run.event_loop"`).
    pub name: &'static str,
    /// Total wall-clock time attributed, nanoseconds.
    pub total_ns: u128,
    /// Number of times the span closed.
    pub count: u64,
}

/// Accumulates wall-clock time per named span.
///
/// Spans follow a dot-separated naming convention: `run.*` spans tile the
/// whole run (calibrate / setup / event_loop / finalize), `event.*` spans
/// tile the event loop by event category, and subsystem spans
/// (`grid.update`, `channel.sample`, `mesh.handle`, `mobility.step`) nest
/// inside event spans — so `run.*` children sum to the run and everything
/// else attributes time *within* them.
#[derive(Debug, Default)]
pub struct SpanProfiler {
    names: Vec<&'static str>,
    totals_ns: Vec<u128>,
    counts: Vec<u64>,
}

impl SpanProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `name` (idempotent) and returns its handle.
    pub fn register(&mut self, name: &'static str) -> SpanId {
        if let Some(i) = self.names.iter().position(|n| *n == name) {
            return SpanId(i);
        }
        self.names.push(name);
        self.totals_ns.push(0);
        self.counts.push(0);
        SpanId(self.names.len() - 1)
    }

    /// Attributes `elapsed` to a span.
    pub fn record(&mut self, id: SpanId, elapsed: std::time::Duration) {
        self.totals_ns[id.0] += elapsed.as_nanos();
        self.counts[id.0] += 1;
    }

    /// The accumulated totals, sorted by total time descending.
    pub fn report(&self) -> Vec<SpanStat> {
        let mut out: Vec<SpanStat> = (0..self.names.len())
            .filter(|&i| self.counts[i] > 0)
            .map(|i| SpanStat {
                name: self.names[i],
                total_ns: self.totals_ns[i],
                count: self.counts[i],
            })
            .collect();
        out.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(b.name)));
        out
    }

    /// Total nanoseconds attributed to `name`, if it ever closed.
    pub fn total_ns(&self, name: &str) -> Option<u128> {
        self.names
            .iter()
            .position(|n| *n == name)
            .filter(|&i| self.counts[i] > 0)
            .map(|i| self.totals_ns[i])
    }

    /// Fraction of the `root` span covered by its direct children — spans
    /// named `prefix.*` with exactly one more dot-separated segment than
    /// `prefix` (the root `"run.total"` is covered by `"run.calibrate"`,
    /// `"run.event_loop"`, … but not by `"run.total"` itself).
    ///
    /// Returns `None` if the root span never closed.
    pub fn coverage(&self, root: &str) -> Option<f64> {
        let total = self.total_ns(root)?;
        if total == 0 {
            return Some(1.0);
        }
        let prefix = root.rsplit_once('.').map_or("", |(p, _)| p);
        let depth = root.matches('.').count();
        let children: u128 = (0..self.names.len())
            .filter(|&i| {
                let n = self.names[i];
                n != root
                    && self.counts[i] > 0
                    && n.starts_with(prefix)
                    && n.matches('.').count() == depth
            })
            .map(|i| self.totals_ns[i])
            .sum();
        Some(children as f64 / total as f64)
    }
}

/// An RAII span guard: closes its span on drop.
///
/// Holds a mutable borrow of the bus for its whole scope — use it for
/// coarse phases. Hot paths that need the bus inside the span should use
/// the manual [`Telemetry::span_start`] / [`Telemetry::span_end`] pair
/// instead.
pub struct SpanGuard<'a> {
    telemetry: &'a mut Telemetry,
    id: SpanId,
    start: SpanStart,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.telemetry.span_end(self.id, self.start);
    }
}

/// Opens an RAII span on a [`Telemetry`] bus by name.
///
/// ```
/// use cocoa_sim::span;
/// use cocoa_sim::telemetry::{Telemetry, TelemetryLevel};
///
/// let mut t = Telemetry::new(TelemetryLevel::Full);
/// {
///     let _s = span!(t, "grid.update");
///     // ... timed work ...
/// }
/// assert_eq!(t.spans().report()[0].name, "grid.update");
/// ```
#[macro_export]
macro_rules! span {
    ($telemetry:expr, $name:literal) => {{
        let id = $telemetry.span_id($name);
        $telemetry.span_guard(id)
    }};
}

/// The per-run telemetry bus.
///
/// See the [module docs](self) for the data model and level gating.
#[derive(Debug)]
pub struct Telemetry {
    level: TelemetryLevel,
    events: VecDeque<StampedEvent>,
    capacity: Option<usize>,
    seq: u64,
    dropped: u64,
    counters: CounterRegistry,
    spans: SpanProfiler,
    hists: HistogramRegistry,
    hist_enabled: bool,
    span_dur_hist: HistId,
    legacy: Option<Trace>,
    sample_interval: Option<SimDuration>,
}

impl Telemetry {
    /// A bus recording at `level`, unbounded.
    pub fn new(level: TelemetryLevel) -> Self {
        let mut hists = HistogramRegistry::new();
        // Span durations are wall-clock — the one non-deterministic hist,
        // excluded from snapshots and equivalence checks like span timers.
        let span_dur_hist = hists.register("span.duration_us", true);
        Telemetry {
            level,
            events: VecDeque::new(),
            capacity: None,
            seq: 0,
            dropped: 0,
            counters: CounterRegistry::new(),
            spans: SpanProfiler::new(),
            hists,
            hist_enabled: true,
            span_dur_hist,
            legacy: None,
            sample_interval: None,
        }
    }

    /// A disabled bus: every hook is a single branch.
    pub fn off() -> Self {
        Telemetry::new(TelemetryLevel::Off)
    }

    /// A bus retaining at most `capacity` events; older events are evicted
    /// and counted in [`Telemetry::dropped_events`] (ring-buffer mode for
    /// long runs — the drop is explicit, never silent).
    pub fn with_capacity(level: TelemetryLevel, capacity: usize) -> Self {
        let mut t = Telemetry::new(level);
        t.capacity = Some(capacity);
        t.events.reserve(capacity.min(65_536));
        t
    }

    /// The recording level.
    pub fn level(&self) -> TelemetryLevel {
        self.level
    }

    /// The ring-buffer capacity bound, if one was set.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Rebuilds a bus from checkpointed state: the retained event window,
    /// the emission/drop totals, the counter values and the deterministic
    /// histogram states, exactly as captured.
    ///
    /// Span timers (and wall-clock histograms such as `span.duration_us`)
    /// restart at zero — span durations are wall-clock, the one
    /// non-deterministic quantity the bus records, and are excluded from
    /// snapshots by design. Any legacy [`Trace`] attachment is likewise not
    /// part of a checkpoint; reattach one after restoring if needed.
    pub fn from_checkpoint(c: TelemetryCheckpoint) -> Self {
        let mut t = Telemetry::new(c.level);
        t.capacity = c.capacity;
        t.seq = c.seq;
        t.dropped = c.dropped;
        t.sample_interval = c.sample_interval;
        t.events = c.events.into();
        for (name, value) in c.counters {
            t.counters.set(name, value);
        }
        for (name, hist) in c.hists {
            t.hists.restore(name, hist);
        }
        t
    }

    /// Sets the per-robot timeline sampling interval. Unset means "sample
    /// at every metrics tick".
    pub fn set_sample_interval(&mut self, interval: SimDuration) {
        self.sample_interval = Some(interval);
    }

    /// The configured timeline sampling interval, if any.
    pub fn sample_interval(&self) -> Option<SimDuration> {
        self.sample_interval
    }

    /// Attaches a legacy string [`Trace`] that
    /// [`Telemetry::legacy`] emissions are mirrored into.
    pub fn attach_legacy(&mut self, trace: Trace) {
        self.legacy = Some(trace);
    }

    /// Detaches and returns the legacy trace, if one was attached.
    pub fn take_legacy(&mut self) -> Option<Trace> {
        self.legacy.take()
    }

    /// A read-only view of the attached legacy trace.
    pub fn legacy_trace(&self) -> Option<&Trace> {
        self.legacy.as_ref()
    }

    /// Whether protocol events and timeline samples are recorded.
    #[inline]
    pub fn wants_events(&self) -> bool {
        self.level >= TelemetryLevel::Timeline
    }

    /// Whether high-volume per-packet events and spans are recorded.
    #[inline]
    pub fn wants_full(&self) -> bool {
        self.level >= TelemetryLevel::Full
    }

    /// Whether counters are maintained.
    #[inline]
    pub fn wants_counters(&self) -> bool {
        self.level >= TelemetryLevel::Counters
    }

    fn push(&mut self, t_us: u64, event: TelemetryEvent) {
        if self.capacity == Some(0) {
            self.seq += 1;
            self.dropped += 1;
            return;
        }
        if let Some(cap) = self.capacity {
            if self.events.len() == cap {
                self.events.pop_front();
                self.dropped += 1;
            }
        }
        self.events.push_back(StampedEvent {
            t_us,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Records a protocol event (kept at `Timeline` and above).
    #[inline]
    pub fn emit(&mut self, now: SimTime, event: TelemetryEvent) {
        if self.level >= TelemetryLevel::Timeline {
            self.push(now.as_micros(), event);
        }
    }

    /// Records a high-volume event (kept at `Full` only). The closure is
    /// invoked only when the event is kept, so hot paths pay one branch
    /// when it is not.
    #[inline]
    pub fn emit_full(&mut self, now: SimTime, event: impl FnOnce() -> TelemetryEvent) {
        if self.level >= TelemetryLevel::Full {
            self.push(now.as_micros(), event());
        }
    }

    /// Routes a legacy string record: mirrors it into the attached
    /// [`Trace`] (if any) and, at `Full`, also records it as a
    /// [`TelemetryEvent::Legacy`] event so nothing is lost mid-migration.
    pub fn legacy(
        &mut self,
        now: SimTime,
        level: TraceLevel,
        subsystem: &'static str,
        message: impl FnOnce() -> String,
    ) {
        match (&mut self.legacy, self.level >= TelemetryLevel::Full) {
            (Some(trace), true) => {
                let msg = message();
                trace.emit(now, level, subsystem, || msg.clone());
                self.push(
                    now.as_micros(),
                    TelemetryEvent::Legacy {
                        level,
                        subsystem,
                        message: msg,
                    },
                );
            }
            (Some(trace), false) => trace.emit(now, level, subsystem, message),
            (None, true) => {
                let msg = message();
                self.push(
                    now.as_micros(),
                    TelemetryEvent::Legacy {
                        level,
                        subsystem,
                        message: msg,
                    },
                );
            }
            (None, false) => {}
        }
    }

    /// Registers (or looks up) a counter.
    pub fn counter(&mut self, name: &'static str) -> CounterId {
        self.counters.register(name)
    }

    /// Increments a counter by one (no-op below `Counters`).
    #[inline]
    pub fn bump(&mut self, id: CounterId) {
        if self.level >= TelemetryLevel::Counters {
            self.counters.bump(id);
        }
    }

    /// Adds `n` to a counter (no-op below `Counters`).
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        if self.level >= TelemetryLevel::Counters {
            self.counters.add(id, n);
        }
    }

    /// Registers `name` if needed and sets it to `value` (no-op below
    /// `Counters`). Used to absorb subsystem statistics at run end.
    pub fn absorb(&mut self, name: &'static str, value: u64) {
        if self.level >= TelemetryLevel::Counters {
            self.counters.set(name, value);
        }
    }

    /// The counter registry.
    pub fn counters(&self) -> &CounterRegistry {
        &self.counters
    }

    /// Registers (or looks up) a deterministic histogram.
    pub fn hist(&mut self, name: &'static str) -> HistId {
        self.hists.register(name, false)
    }

    /// Registers (or looks up) a wall-clock histogram — excluded from
    /// snapshots and determinism checks, like span timers.
    pub fn hist_wall(&mut self, name: &'static str) -> HistId {
        self.hists.register(name, true)
    }

    /// Records a histogram sample (no-op below `Counters` or when
    /// histograms are disabled). Recording is a branch plus four writes —
    /// no allocation, no clock, no RNG — so it never perturbs a run.
    #[inline]
    pub fn hist_record(&mut self, id: HistId, x: f64) {
        if self.hist_enabled && self.level >= TelemetryLevel::Counters {
            self.hists.record(id, x);
        }
    }

    /// Enables or disables histogram recording wholesale (used by the
    /// zero-observer-effect suite to compare on vs off).
    pub fn set_histograms(&mut self, enabled: bool) {
        self.hist_enabled = enabled;
    }

    /// Whether histogram recording is enabled.
    pub fn histograms_enabled(&self) -> bool {
        self.hist_enabled
    }

    /// The histogram registry.
    pub fn histograms(&self) -> &HistogramRegistry {
        &self.hists
    }

    /// Registers (or looks up) a span by name.
    pub fn span_id(&mut self, name: &'static str) -> SpanId {
        self.spans.register(name)
    }

    /// Starts a span: returns a token that is `Some` only at `Full`, so
    /// closing it costs nothing otherwise.
    #[inline]
    pub fn span_start(&self) -> SpanStart {
        if self.level >= TelemetryLevel::Full {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Closes a span opened with [`Telemetry::span_start`]. The duration
    /// also feeds the wall-clock `span.duration_us` histogram (spans only
    /// open at `Full`, so this costs nothing otherwise).
    #[inline]
    pub fn span_end(&mut self, id: SpanId, start: SpanStart) {
        if let Some(t0) = start {
            let elapsed = t0.elapsed();
            self.spans.record(id, elapsed);
            if self.hist_enabled {
                self.hists
                    .record(self.span_dur_hist, elapsed.as_secs_f64() * 1e6);
            }
        }
    }

    /// Opens an RAII span (see [`SpanGuard`] and the [`span!`](crate::span)
    /// macro).
    pub fn span_guard(&mut self, id: SpanId) -> SpanGuard<'_> {
        let start = self.span_start();
        SpanGuard {
            telemetry: self,
            id,
            start,
        }
    }

    /// The span profiler.
    pub fn spans(&self) -> &SpanProfiler {
        &self.spans
    }

    /// Retained events in emission order.
    pub fn events(&self) -> impl Iterator<Item = &StampedEvent> {
        self.events.iter()
    }

    /// Total events emitted (including dropped ones).
    pub fn events_emitted(&self) -> u64 {
        self.seq
    }

    /// Events discarded by the ring-buffer capacity bound.
    pub fn dropped_events(&self) -> u64 {
        self.dropped
    }

    /// Serializes the deterministic part of the bus as JSONL: one `meta`
    /// header line, one line per event, and one `counter` line per
    /// registered counter (sorted by name). With `include_spans`, a
    /// trailer of `span` lines and non-empty `hist` lines is appended —
    /// span durations (and the `span.duration_us` histogram) are
    /// wall-clock and therefore non-reproducible content; leave the
    /// trailer out to get a byte-identical trace across identical seeds.
    pub fn to_jsonl(&self, include_spans: bool) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        let _ = writeln!(
            out,
            "{{\"kind\":\"meta\",\"schema\":{},\"level\":\"{}\",\"events\":{},\"dropped\":{}}}",
            TRACE_SCHEMA_VERSION, self.level, self.seq, self.dropped
        );
        for e in &self.events {
            write_event_line(&mut out, e);
        }
        for (name, value) in self.counters.sorted() {
            let _ = writeln!(
                out,
                "{{\"kind\":\"counter\",\"name\":\"{name}\",\"value\":{value}}}"
            );
        }
        if include_spans {
            for s in self.spans.report() {
                let _ = writeln!(
                    out,
                    "{{\"kind\":\"span\",\"name\":\"{}\",\"total_ns\":{},\"count\":{}}}",
                    s.name, s.total_ns, s.count
                );
            }
            for (name, h, wall) in self.hists.sorted() {
                if h.is_empty() {
                    continue;
                }
                let _ = write!(
                    out,
                    "{{\"kind\":\"hist\",\"name\":\"{name}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"wall\":{wall},\"buckets\":\"",
                    h.count(),
                    h.sum(),
                    h.min(),
                    h.max()
                );
                let mut first = true;
                for (idx, c) in h.nonzero_buckets() {
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    let _ = write!(out, "{idx}:{c}");
                }
                out.push_str("\"}\n");
            }
        }
        out
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::off()
    }
}

fn write_event_line(out: &mut String, e: &StampedEvent) {
    let _ = write!(
        out,
        "{{\"kind\":\"{}\",\"seq\":{},\"t_us\":{}",
        e.event.kind(),
        e.seq,
        e.t_us
    );
    match &e.event {
        TelemetryEvent::WindowStart { window } => {
            let _ = write!(out, ",\"window\":{window}");
        }
        TelemetryEvent::BeaconTx { robot, x_m, y_m } => {
            let _ = write!(out, ",\"robot\":{robot},\"x_m\":{x_m},\"y_m\":{y_m}");
        }
        TelemetryEvent::BeaconRx {
            robot,
            from,
            rssi_dbm,
            outcome,
        } => {
            let _ = write!(
                out,
                ",\"robot\":{robot},\"from\":{from},\"rssi_dbm\":{rssi_dbm},\"outcome\":\"{outcome}\""
            );
        }
        TelemetryEvent::GridUpdate { robot } => {
            let _ = write!(out, ",\"robot\":{robot}");
        }
        TelemetryEvent::Fix {
            robot,
            window,
            x_m,
            y_m,
            err_m,
        } => {
            let _ = write!(
                out,
                ",\"robot\":{robot},\"window\":{window},\"x_m\":{x_m},\"y_m\":{y_m},\"err_m\":{err_m}"
            );
        }
        TelemetryEvent::FlatPosterior {
            robot,
            window,
            entropy,
            threshold,
        } => {
            let _ = write!(
                out,
                ",\"robot\":{robot},\"window\":{window},\"entropy\":{entropy},\"threshold\":{threshold}"
            );
        }
        TelemetryEvent::StarvedWindow { robot, window }
        | TelemetryEvent::SyncDelivered { robot, window }
        | TelemetryEvent::SyncMissed { robot, window } => {
            let _ = write!(out, ",\"robot\":{robot},\"window\":{window}");
        }
        TelemetryEvent::Failover { new_sync } => {
            let _ = write!(out, ",\"new_sync\":{new_sync}");
        }
        TelemetryEvent::MeshPrune { robot, source, seq } => {
            let _ = write!(out, ",\"robot\":{robot},\"source\":{source},\"seq\":{seq}");
        }
        TelemetryEvent::RadioState { robot, state } => {
            let _ = write!(out, ",\"robot\":{robot},\"state\":\"{state}\"");
        }
        TelemetryEvent::FaultInjected { kind, robot } => {
            let _ = write!(out, ",\"fault\":\"{kind}\"");
            match robot {
                Some(r) => {
                    let _ = write!(out, ",\"robot\":{r}");
                }
                None => out.push_str(",\"robot\":null"),
            }
        }
        TelemetryEvent::HealthTransition { robot, state } => {
            let _ = write!(out, ",\"robot\":{robot},\"state\":\"{state}\"");
        }
        TelemetryEvent::RobotSample {
            robot,
            true_x_m,
            true_y_m,
            est_x_m,
            est_y_m,
            err_m,
            entropy_frac,
            energy_j,
            radio,
            health,
        } => {
            let _ = write!(
                out,
                ",\"robot\":{robot},\"true_x_m\":{true_x_m},\"true_y_m\":{true_y_m},\"est_x_m\":{est_x_m},\"est_y_m\":{est_y_m},\"err_m\":{err_m}"
            );
            write_opt_f64(out, "entropy_frac", *entropy_frac);
            let _ = write!(
                out,
                ",\"energy_j\":{energy_j},\"radio\":\"{radio}\",\"health\":\"{health}\""
            );
        }
        TelemetryEvent::TeamSample {
            mean_err_m,
            robots,
            energy_j,
        } => {
            let _ = write!(
                out,
                ",\"mean_err_m\":{mean_err_m},\"robots\":{robots},\"energy_j\":{energy_j}"
            );
        }
        TelemetryEvent::SnapshotTaken { bytes, sections } => {
            let _ = write!(out, ",\"bytes\":{bytes},\"sections\":{sections}");
        }
        TelemetryEvent::SnapshotRestored { bytes } => {
            let _ = write!(out, ",\"bytes\":{bytes}");
        }
        TelemetryEvent::Legacy {
            level,
            subsystem,
            message,
        } => {
            let _ = write!(out, ",\"level\":\"{level}\",\"subsystem\":\"{subsystem}\"");
            out.push_str(",\"message\":\"");
            escape_json(message, out);
            out.push('"');
        }
    }
    out.push_str("}\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn level_ordering() {
        assert!(TelemetryLevel::Off < TelemetryLevel::Counters);
        assert!(TelemetryLevel::Counters < TelemetryLevel::Timeline);
        assert!(TelemetryLevel::Timeline < TelemetryLevel::Full);
        assert_eq!(
            TelemetryLevel::parse("timeline"),
            Some(TelemetryLevel::Timeline)
        );
        assert_eq!(TelemetryLevel::parse("bogus"), None);
        assert_eq!(TelemetryLevel::Full.to_string(), "full");
    }

    #[test]
    fn off_records_nothing() {
        let mut t = Telemetry::off();
        t.emit(at(0), TelemetryEvent::WindowStart { window: 0 });
        t.emit_full(at(0), || TelemetryEvent::GridUpdate { robot: 1 });
        let c = t.counter("x");
        t.bump(c);
        assert_eq!(t.events().count(), 0);
        assert_eq!(t.counters().get("x"), Some(0));
        assert!(t.span_start().is_none());
    }

    #[test]
    fn emit_full_closure_is_lazy() {
        let mut t = Telemetry::new(TelemetryLevel::Timeline);
        let mut built = false;
        t.emit_full(at(0), || {
            built = true;
            TelemetryEvent::GridUpdate { robot: 0 }
        });
        assert!(!built, "closure must not run below Full");
        t.emit(at(0), TelemetryEvent::WindowStart { window: 0 });
        assert_eq!(t.events().count(), 1);
    }

    #[test]
    fn sequence_numbers_are_stable_and_total() {
        let mut t = Telemetry::new(TelemetryLevel::Full);
        t.emit(at(1), TelemetryEvent::WindowStart { window: 0 });
        t.emit_full(at(1), || TelemetryEvent::GridUpdate { robot: 2 });
        t.emit(at(2), TelemetryEvent::WindowStart { window: 1 });
        let seqs: Vec<u64> = t.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn ring_buffer_counts_drops_explicitly() {
        let mut t = Telemetry::with_capacity(TelemetryLevel::Timeline, 2);
        for w in 0..5 {
            t.emit(at(w), TelemetryEvent::WindowStart { window: w });
        }
        assert_eq!(t.events().count(), 2);
        assert_eq!(t.dropped_events(), 3);
        assert_eq!(t.events_emitted(), 5);
        // The meta line reports the drop.
        let jsonl = t.to_jsonl(false);
        assert!(jsonl.starts_with("{\"kind\":\"meta\""), "{jsonl}");
        assert!(jsonl.contains("\"dropped\":3"), "{jsonl}");
        // Survivors are the newest events.
        let windows: Vec<u64> = t
            .events()
            .map(|e| match e.event {
                TelemetryEvent::WindowStart { window } => window,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(windows, vec![3, 4]);
    }

    #[test]
    fn counters_bump_at_counters_level_and_sort_by_name() {
        let mut t = Telemetry::new(TelemetryLevel::Counters);
        let b = t.counter("z.second");
        let a = t.counter("a.first");
        t.bump(b);
        t.add(a, 4);
        t.absorb("m.middle", 7);
        let sorted = t.counters().sorted();
        assert_eq!(
            sorted,
            vec![("a.first", 4), ("m.middle", 7), ("z.second", 1)]
        );
        // Registration is idempotent.
        assert_eq!(t.counter("a.first"), a);
    }

    #[test]
    fn spans_only_run_at_full() {
        let mut t = Telemetry::new(TelemetryLevel::Timeline);
        let id = t.span_id("grid.update");
        let s = t.span_start();
        t.span_end(id, s);
        assert!(t.spans().report().is_empty());

        let mut t = Telemetry::new(TelemetryLevel::Full);
        let id = t.span_id("grid.update");
        let s = t.span_start();
        t.span_end(id, s);
        let report = t.spans().report();
        assert_eq!(report.len(), 1);
        assert_eq!(report[0].name, "grid.update");
        assert_eq!(report[0].count, 1);
    }

    #[test]
    fn span_guard_macro_records() {
        let mut t = Telemetry::new(TelemetryLevel::Full);
        {
            let _g = span!(t, "run.total");
        }
        {
            let _g = span!(t, "run.total");
        }
        assert_eq!(t.spans().report()[0].count, 2);
    }

    #[test]
    fn coverage_sums_direct_children() {
        let mut p = SpanProfiler::new();
        let total = p.register("run.total");
        let a = p.register("run.calibrate");
        let b = p.register("run.event_loop");
        let nested = p.register("event.transmit");
        p.record(total, std::time::Duration::from_nanos(100));
        p.record(a, std::time::Duration::from_nanos(30));
        p.record(b, std::time::Duration::from_nanos(68));
        p.record(nested, std::time::Duration::from_nanos(50));
        let cov = p.coverage("run.total").unwrap();
        assert!((cov - 0.98).abs() < 1e-12, "coverage {cov}");
        assert_eq!(p.coverage("missing.root"), None);
    }

    #[test]
    fn legacy_routes_to_trace_and_full_event() {
        let mut t = Telemetry::new(TelemetryLevel::Full);
        t.attach_legacy(Trace::new(TraceLevel::Debug));
        t.legacy(at(1), TraceLevel::Info, "sync", || "hello".into());
        assert_eq!(t.legacy_trace().unwrap().records().count(), 1);
        assert_eq!(t.events().count(), 1);
        match &t.events().next().unwrap().event {
            TelemetryEvent::Legacy {
                subsystem, message, ..
            } => {
                assert_eq!(*subsystem, "sync");
                assert_eq!(message, "hello");
            }
            other => panic!("expected legacy event, got {other:?}"),
        }
        // Below Full the trace still gets the record, the bus does not.
        let mut t = Telemetry::new(TelemetryLevel::Timeline);
        t.attach_legacy(Trace::new(TraceLevel::Debug));
        t.legacy(at(1), TraceLevel::Info, "sync", || "hi".into());
        assert_eq!(t.legacy_trace().unwrap().records().count(), 1);
        assert_eq!(t.events().count(), 0);
        let trace = t.take_legacy().unwrap();
        assert_eq!(trace.records().count(), 1);
        assert!(t.take_legacy().is_none());
    }

    #[test]
    fn jsonl_lines_are_well_formed() {
        let mut t = Telemetry::new(TelemetryLevel::Full);
        t.emit(at(1), TelemetryEvent::WindowStart { window: 0 });
        t.emit(
            at(2),
            TelemetryEvent::RobotSample {
                robot: 3,
                true_x_m: 1.5,
                true_y_m: 2.0,
                est_x_m: 1.0,
                est_y_m: 2.5,
                err_m: 0.75,
                entropy_frac: None,
                energy_j: 12.25,
                radio: "idle",
                health: "healthy",
            },
        );
        t.emit(
            at(3),
            TelemetryEvent::Legacy {
                level: TraceLevel::Warn,
                subsystem: "mac",
                message: "quote \" and\nnewline".into(),
            },
        );
        t.absorb("traffic.fixes", 9);
        let jsonl = t.to_jsonl(false);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 5); // meta + 3 events + 1 counter
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(jsonl.contains("\"entropy_frac\":null"));
        assert!(jsonl.contains("\\\" and\\nnewline"));
        assert!(jsonl.contains("{\"kind\":\"counter\",\"name\":\"traffic.fixes\",\"value\":9}"));
    }

    #[test]
    fn jsonl_is_deterministic_for_identical_emissions() {
        let build = || {
            let mut t = Telemetry::new(TelemetryLevel::Full);
            for w in 0..10 {
                t.emit(at(w), TelemetryEvent::WindowStart { window: w });
                t.emit_full(at(w), || TelemetryEvent::GridUpdate { robot: w as u32 });
            }
            t.absorb("a", 1);
            t.absorb("b", 2);
            t.to_jsonl(false)
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn spans_appear_only_when_requested() {
        let mut t = Telemetry::new(TelemetryLevel::Full);
        let id = t.span_id("grid.update");
        let s = t.span_start();
        t.span_end(id, s);
        assert!(!t.to_jsonl(false).contains("\"kind\":\"span\""));
        assert!(t.to_jsonl(true).contains("\"kind\":\"span\""));
    }

    #[test]
    fn hist_recording_is_gated_by_level_and_toggle() {
        let mut t = Telemetry::off();
        let h = t.hist("run.x");
        t.hist_record(h, 1.0);
        assert!(t.histograms().get("run.x").unwrap().is_empty());

        let mut t = Telemetry::new(TelemetryLevel::Counters);
        let h = t.hist("run.x");
        t.hist_record(h, 1.0);
        assert_eq!(t.histograms().get("run.x").unwrap().count(), 1);
        t.set_histograms(false);
        t.hist_record(h, 2.0);
        assert_eq!(t.histograms().get("run.x").unwrap().count(), 1);
    }

    #[test]
    fn hist_lines_ride_the_span_trailer_only() {
        let mut t = Telemetry::new(TelemetryLevel::Counters);
        let h = t.hist("run.x");
        t.hist_record(h, 2.5);
        assert!(!t.to_jsonl(false).contains("\"kind\":\"hist\""));
        let full = t.to_jsonl(true);
        assert!(full.contains(
            "{\"kind\":\"hist\",\"name\":\"run.x\",\"count\":1,\"sum\":2.5,\"min\":2.5,\"max\":2.5,\"wall\":false,\"buckets\":\""
        ));
        // The empty span.duration_us histogram is omitted.
        assert!(!full.contains("span.duration_us"));
    }

    #[test]
    fn span_end_feeds_the_wall_duration_hist() {
        let mut t = Telemetry::new(TelemetryLevel::Full);
        let id = t.span_id("grid.update");
        let s = t.span_start();
        t.span_end(id, s);
        let h = t.histograms().get("span.duration_us").unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(t.histograms().is_wall("span.duration_us"), Some(true));
    }

    #[test]
    fn event_kinds_are_stable() {
        assert_eq!(
            TelemetryEvent::WindowStart { window: 0 }.kind(),
            "window_start"
        );
        assert_eq!(
            TelemetryEvent::FaultInjected {
                kind: "crash",
                robot: Some(1)
            }
            .kind(),
            "fault"
        );
    }
}
