//! Streaming statistics for long simulation runs.
//!
//! Error series over 30 simulated minutes × many robots produce a lot of
//! samples; these accumulators compute exact running moments (Welford's
//! algorithm) and histogram-based quantiles in O(1) memory, so sweeps can
//! aggregate without retaining every sample.

use serde::{Deserialize, Serialize};

/// Arithmetic mean of a slice (0 if empty).
///
/// This is the one shared definition of "mean of a batch" — the metrics
/// and report layers both call it, so a summary table can never disagree
/// with the series it was derived from. Summation is left-to-right, so
/// results are bit-identical to a hand-rolled `iter().sum() / len`.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sorts samples ascending for [`percentile_sorted`].
///
/// # Panics
///
/// Panics if any sample is NaN — a NaN would make the order (and every
/// later quantile) meaningless.
pub fn sort_finite(xs: &mut [f64]) {
    xs.sort_by(|a, b| {
        a.partial_cmp(b)
            .unwrap_or_else(|| panic!("cannot order NaN samples"))
    });
}

/// The `p`-quantile of an ascending-sorted slice (`p` in `[0, 1]`,
/// nearest-rank with rounding: `p = 0` is the minimum, `p = 1` the
/// maximum, a single sample is every quantile).
///
/// # Panics
///
/// Panics if the slice is empty or `p` is outside `[0, 1]`.
pub fn percentile_sorted(xs: &[f64], p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "quantile p must be in [0,1]");
    assert!(!xs.is_empty(), "empty sample set has no quantiles");
    let idx = ((xs.len() - 1) as f64 * p).round() as usize;
    xs[idx]
}

/// Exact running mean/variance/min/max (Welford's online algorithm).
///
/// # Examples
///
/// ```
/// use cocoa_sim::stats::RunningStats;
///
/// let mut s = RunningStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.population_variance(), 4.0);
/// assert_eq!(s.min(), 2.0);
/// assert_eq!(s.max(), 9.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not finite — a NaN would silently poison every
    /// later statistic.
    pub fn push(&mut self, x: f64) {
        assert!(x.is_finite(), "statistics require finite samples, got {x}");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Whether no samples were added.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The running mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (denominator n; 0 if empty).
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance (denominator n−1; 0 if fewer than two samples).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Smallest sample (+∞ if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (−∞ if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A fixed-range histogram with O(1) quantile queries.
///
/// Samples outside the range clamp to the edge bins, so quantiles remain
/// conservative rather than silently wrong.
///
/// # Examples
///
/// ```
/// use cocoa_sim::stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 100.0, 200);
/// for i in 0..1000 {
///     h.push(f64::from(i % 100));
/// }
/// let median = h.quantile(0.5);
/// assert!((median - 50.0).abs() < 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` cells.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty/not finite or `bins` is zero.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "invalid histogram range"
        );
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Adds a sample (clamped to the range).
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "histogram samples must not be NaN");
        let bins = self.counts.len();
        let idx = if x <= self.lo {
            0
        } else if x >= self.hi {
            bins - 1
        } else {
            (((x - self.lo) / (self.hi - self.lo)) * bins as f64) as usize
        };
        self.counts[idx.min(bins - 1)] += 1;
        self.total += 1;
    }

    /// Number of samples.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether no samples were added.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The `q`-quantile (bin midpoint; `q` in `[0, 1]`).
    ///
    /// # Panics
    ///
    /// Panics if the histogram is empty or `q` is out of range.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        assert!(self.total > 0, "quantile of an empty histogram");
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0;
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                return self.lo + (i as f64 + 0.5) * width;
            }
        }
        self.hi
    }

    /// Fraction of samples at or below `x`.
    pub fn fraction_below(&self, x: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let bins = self.counts.len();
        let width = (self.hi - self.lo) / bins as f64;
        let mut count = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            let bin_hi = self.lo + (i as f64 + 1.0) * width;
            if bin_hi <= x {
                count += c;
            } else {
                break;
            }
        }
        count as f64 / self.total as f64
    }

    /// Merges a histogram with identical layout.
    ///
    /// # Panics
    ///
    /// Panics if the ranges or bin counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.counts.len() == other.counts.len(),
            "histogram layouts differ"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn mean_of_single_sample_is_itself() {
        assert_eq!(mean(&[3.25]), 3.25);
    }

    #[test]
    fn mean_matches_manual_sum() {
        let xs = [1.0, 2.0, 4.0];
        assert_eq!(mean(&xs), (1.0 + 2.0 + 4.0) / 3.0);
    }

    #[test]
    fn percentile_endpoints_and_single_sample() {
        let mut xs = vec![5.0, 1.0, 3.0];
        sort_finite(&mut xs);
        assert_eq!(xs, vec![1.0, 3.0, 5.0]);
        assert_eq!(percentile_sorted(&xs, 0.0), 1.0);
        assert_eq!(percentile_sorted(&xs, 0.5), 3.0);
        assert_eq!(percentile_sorted(&xs, 1.0), 5.0);
        let one = [42.0];
        assert_eq!(percentile_sorted(&one, 0.0), 42.0);
        assert_eq!(percentile_sorted(&one, 1.0), 42.0);
    }

    #[test]
    #[should_panic(expected = "empty sample set")]
    fn percentile_of_empty_panics() {
        percentile_sorted(&[], 0.5);
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn percentile_rejects_out_of_range_p() {
        percentile_sorted(&[1.0], 1.5);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn sort_finite_rejects_nan() {
        sort_finite(&mut [1.0, f64::NAN]);
    }

    #[test]
    fn welford_matches_naive() {
        let xs = [1.5, 2.5, 3.5, 10.0, -4.0, 0.0, 7.25];
        let mut s = RunningStats::new();
        for &x in &xs {
            s.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.population_variance() - var).abs() < 1e-12);
        assert_eq!(s.min(), -4.0);
        assert_eq!(s.max(), 10.0);
        assert_eq!(s.len(), 7);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = RunningStats::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_sample_panics() {
        RunningStats::new().push(f64::NAN);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| f64::from(i) * 0.37 - 5.0).collect();
        let mut all = RunningStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.population_variance() - all.population_variance()).abs() < 1e-9);
        assert_eq!(a.len(), all.len());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.push(3.0);
        let before = a;
        a.merge(&RunningStats::new());
        assert_eq!(a, before);
        let mut empty = RunningStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(0.0, 10.0, 100);
        for i in 0..10_000 {
            h.push((i % 100) as f64 / 10.0);
        }
        assert!((h.quantile(0.5) - 5.0).abs() < 0.2);
        assert!((h.quantile(0.9) - 9.0).abs() < 0.2);
        assert!(h.quantile(0.0) < h.quantile(1.0));
    }

    #[test]
    fn histogram_clamps_out_of_range() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.push(-100.0);
        h.push(100.0);
        assert_eq!(h.len(), 2);
        assert!(h.quantile(0.25) < 1.0);
        assert!(h.quantile(1.0) > 9.0);
    }

    #[test]
    fn histogram_fraction_below() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [0.5, 1.5, 2.5, 3.5] {
            h.push(x);
        }
        assert!((h.fraction_below(2.0) - 0.5).abs() < 1e-12);
        assert_eq!(h.fraction_below(10.0), 1.0);
        assert_eq!(h.fraction_below(0.0), 0.0);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new(0.0, 10.0, 10);
        let mut b = Histogram::new(0.0, 10.0, 10);
        a.push(1.0);
        b.push(9.0);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert!((a.fraction_below(5.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "layouts differ")]
    fn histogram_merge_rejects_mismatch() {
        let mut a = Histogram::new(0.0, 10.0, 10);
        let b = Histogram::new(0.0, 20.0, 10);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_of_empty_panics() {
        let h = Histogram::new(0.0, 1.0, 4);
        let _ = h.quantile(0.5);
    }
}
