//! # cocoa-sim — deterministic discrete-event simulation engine
//!
//! This crate is the substrate that replaces Glomosim in the CoCoA
//! reproduction (see `DESIGN.md` at the repository root): a minimal,
//! deterministic discrete-event kernel with
//!
//! - exact integer-microsecond [`time::SimTime`] / [`time::SimDuration`],
//! - a time-ordered, FIFO-tie-broken [`event::EventQueue`] with lazy
//!   cancellation,
//! - a generic run loop, [`engine::Engine`], that dispatches events to a
//!   caller-supplied handler,
//! - reproducible per-subsystem random streams via [`rng::SeedSplitter`],
//! - per-run structured tracing in [`trace::Trace`],
//! - a typed observability bus — events, counters, span timers — in
//!   [`telemetry::Telemetry`],
//! - a versioned, CRC-checked binary checkpoint codec in [`snapshot`],
//!   with the shared hand-rolled JSON emission helpers in [`jsonfmt`].
//!
//! The crate knows nothing about radios or robots; protocol models live in
//! `cocoa-net`, `cocoa-mobility`, `cocoa-multicast` and `cocoa-core`.
//!
//! # Examples
//!
//! ```
//! use cocoa_sim::prelude::*;
//!
//! // Count ticks over a 5-second horizon.
//! let mut engine: Engine<()> = Engine::new(SimTime::from_secs(5));
//! engine.schedule_at(SimTime::from_secs(1), ());
//! let mut ticks = 0u32;
//! engine.run(&mut ticks, |eng, ticks, ()| {
//!     *ticks += 1;
//!     eng.schedule_in(SimDuration::from_secs(1), ());
//! });
//! assert_eq!(ticks, 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod engine;
pub mod event;
pub mod faults;
pub mod jsonfmt;
pub mod rng;
pub mod snapshot;
pub mod stats;
pub mod telemetry;
pub mod time;
pub mod trace;

/// Convenient glob-import of the types nearly every consumer needs.
pub mod prelude {
    pub use crate::engine::Engine;
    pub use crate::event::{EventId, EventQueue};
    pub use crate::faults::{Fault, FaultEvent, FaultPlan, GilbertElliott, GilbertElliottLink};
    pub use crate::rng::{DetRng, SeedSplitter};
    pub use crate::snapshot::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};
    pub use crate::stats::{Histogram, RunningStats};
    pub use crate::telemetry::{
        CounterId, CounterRegistry, SpanId, SpanProfiler, StampedEvent, Telemetry, TelemetryEvent,
        TelemetryLevel,
    };
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::trace::{Trace, TraceLevel};
}
