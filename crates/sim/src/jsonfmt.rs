//! Hand-rolled JSON emission shared by every serializer in the workspace.
//!
//! The build environment has no serde, so the telemetry JSONL exporter, the
//! trace-file tooling and the snapshot metadata header all write JSON by
//! hand. This module is the single implementation of the fiddly parts —
//! string escaping and field formatting — so an escaping bug can only ever
//! exist (and be fixed) in one place.
//!
//! Everything here is byte-deterministic: identical inputs render identical
//! bytes, which the golden-trace and snapshot-equivalence suites rely on.

use std::fmt::Write as _;

/// Escapes `s` for embedding inside a JSON string literal, appending to
/// `out` (quotes not included).
///
/// Escapes `"` and `\`, spells `\n`/`\r`/`\t` with their short forms, and
/// uses `\u00XX` for the remaining control characters, matching what the
/// strict parser in `cocoa-core::tracefile` accepts.
pub fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Appends `,"key":value` where the value is a JSON number or `null`.
pub fn write_opt_f64(out: &mut String, key: &str, v: Option<f64>) {
    match v {
        Some(x) => {
            let _ = write!(out, ",\"{key}\":{x}");
        }
        None => {
            let _ = write!(out, ",\"{key}\":null");
        }
    }
}

/// Builds one flat JSON object — the shape every line-oriented format in
/// this workspace uses (telemetry JSONL lines, snapshot metadata headers).
///
/// Fields render in insertion order; string values go through
/// [`escape_json`].
///
/// # Examples
///
/// ```
/// use cocoa_sim::jsonfmt::ObjectWriter;
///
/// let mut w = ObjectWriter::new();
/// w.str_field("kind", "snapshot");
/// w.u64_field("version", 1);
/// assert_eq!(w.finish(), "{\"kind\":\"snapshot\",\"version\":1}");
/// ```
#[derive(Debug, Default)]
pub struct ObjectWriter {
    buf: String,
    first: bool,
}

impl ObjectWriter {
    /// Starts an empty object.
    pub fn new() -> Self {
        ObjectWriter {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        escape_json(key, &mut self.buf);
        self.buf.push_str("\":");
    }

    /// Adds a string field (value escaped).
    pub fn str_field(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        self.buf.push('"');
        escape_json(value, &mut self.buf);
        self.buf.push('"');
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64_field(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a float field, rendered with Rust's shortest round-trip `{}`
    /// formatting (the same spelling `to_jsonl` uses).
    pub fn f64_field(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a boolean field.
    pub fn bool_field(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Closes the object and returns the rendered line (no trailing
    /// newline).
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_controls() {
        let mut out = String::new();
        escape_json("a\"b\\c\nd\re\tf\u{1}g", &mut out);
        assert_eq!(out, "a\\\"b\\\\c\\nd\\re\\tf\\u0001g");
    }

    #[test]
    fn passes_plain_text_and_unicode_through() {
        let mut out = String::new();
        escape_json("héllo → world", &mut out);
        assert_eq!(out, "héllo → world");
    }

    #[test]
    fn opt_f64_renders_null_and_number() {
        let mut out = String::new();
        write_opt_f64(&mut out, "x", Some(1.5));
        write_opt_f64(&mut out, "y", None);
        assert_eq!(out, ",\"x\":1.5,\"y\":null");
    }

    #[test]
    fn object_writer_orders_and_escapes() {
        let mut w = ObjectWriter::new();
        w.str_field("name", "a\"b");
        w.u64_field("n", 7);
        w.f64_field("x", 0.25);
        w.bool_field("ok", true);
        assert_eq!(
            w.finish(),
            "{\"name\":\"a\\\"b\",\"n\":7,\"x\":0.25,\"ok\":true}"
        );
    }

    #[test]
    fn empty_object_is_braces() {
        assert_eq!(ObjectWriter::new().finish(), "{}");
    }
}
