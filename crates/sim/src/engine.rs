//! The discrete-event engine: a clock plus the pending-event set and a
//! run loop that dispatches events to a caller-supplied handler.
//!
//! The engine is deliberately generic over the event payload `E` and carries
//! no knowledge of radios, robots or packets — those live in the upper
//! crates. This mirrors how the paper's Glomosim separates its event kernel
//! from protocol models.

use crate::event::{EventId, EventQueue};
use crate::time::{SimDuration, SimTime};

/// A deterministic discrete-event simulation engine.
///
/// Events of type `E` are scheduled at absolute times (or relative delays)
/// and delivered, in time order with FIFO tie-breaks, to the handler passed
/// to [`Engine::run`]. The handler may schedule further events and may stop
/// the run early with [`Engine::stop`].
///
/// # Examples
///
/// ```
/// use cocoa_sim::engine::Engine;
/// use cocoa_sim::time::{SimDuration, SimTime};
///
/// let mut engine: Engine<&str> = Engine::new(SimTime::from_secs(10));
/// engine.schedule_in(SimDuration::from_secs(1), "tick");
/// let mut seen = Vec::new();
/// engine.run(&mut seen, |eng, seen, event| {
///     seen.push((eng.now(), event));
///     if seen.len() < 3 {
///         eng.schedule_in(SimDuration::from_secs(1), "tick");
///     }
/// });
/// assert_eq!(seen.len(), 3);
/// assert_eq!(seen[2].0, SimTime::from_secs(3));
/// ```
pub struct Engine<E> {
    queue: EventQueue<E>,
    now: SimTime,
    horizon: SimTime,
    stopped: bool,
    processed: u64,
}

impl<E> Engine<E> {
    /// Creates an engine that will run until `horizon` (inclusive).
    ///
    /// Events scheduled after the horizon are accepted but never delivered.
    pub fn new(horizon: SimTime) -> Self {
        Engine {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            horizon,
            stopped: false,
            processed: 0,
        }
    }

    /// The current simulation time (the timestamp of the event being
    /// processed during dispatch).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The run horizon supplied at construction.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Total number of events delivered so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of live pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// The highest number of events ever pending at once (queue high-water
    /// mark; a telemetry counter for sizing long runs).
    pub fn peak_pending(&self) -> usize {
        self.queue.peak_len()
    }

    /// The time of the earliest pending event, if any — whether or not it
    /// lies inside the horizon. Lets callers advance the run to an exact
    /// boundary ("process everything at or before T") before checkpointing.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Rebuilds an engine from checkpointed parts, continuing a run
    /// exactly where [`Engine::replace_queue`] and the accessors left it.
    pub fn from_parts(
        queue: EventQueue<E>,
        now: SimTime,
        horizon: SimTime,
        stopped: bool,
        processed: u64,
    ) -> Self {
        Engine {
            queue,
            now,
            horizon,
            stopped,
            processed,
        }
    }

    /// Swaps in a new pending-event queue and returns the old one.
    ///
    /// Checkpoint support: serializing the queue requires draining it
    /// ([`EventQueue::drain_sorted`] consumes), so the codec takes the
    /// queue out, drains it, and swaps a rebuilt copy back in.
    pub fn replace_queue(&mut self, queue: EventQueue<E>) -> EventQueue<E> {
        std::mem::replace(&mut self.queue, queue)
    }

    /// Schedules an event at an absolute time.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the current simulation time —
    /// scheduling into the past is always a model bug.
    pub fn schedule_at(&mut self, time: SimTime, event: E) -> EventId {
        assert!(
            time >= self.now,
            "cannot schedule event into the past: now={}, requested={}",
            self.now,
            time
        );
        self.queue.push(time, event)
    }

    /// Schedules an event `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventId {
        let t = self.now + delay;
        self.queue.push(t, event)
    }

    /// Cancels a scheduled event. Returns `true` if it was still pending.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Requests that the run loop stop after the current event.
    pub fn stop(&mut self) {
        self.stopped = true;
    }

    /// Whether [`Engine::stop`] has been called.
    pub fn is_stopped(&self) -> bool {
        self.stopped
    }

    /// Delivers the next event to `handler`, advancing the clock.
    ///
    /// Returns `false` when the queue is exhausted, the next event lies
    /// beyond the horizon, or the engine was stopped.
    pub fn step<S>(
        &mut self,
        state: &mut S,
        mut handler: impl FnMut(&mut Self, &mut S, E),
    ) -> bool {
        if self.stopped {
            return false;
        }
        match self.queue.peek_time() {
            Some(t) if t <= self.horizon => {
                let (t, e) = self.queue.pop().expect("peeked event must pop");
                self.now = t;
                self.processed += 1;
                handler(self, state, e);
                true
            }
            Some(_) | None => {
                // Nothing left inside the horizon: advance the clock to the
                // horizon so callers observe a fully elapsed run.
                if self.now < self.horizon {
                    self.now = self.horizon;
                }
                false
            }
        }
    }

    /// Runs the event loop to completion (queue empty, horizon reached, or
    /// stopped), threading `state` through every dispatch.
    pub fn run<S>(&mut self, state: &mut S, mut handler: impl FnMut(&mut Self, &mut S, E)) {
        while self.step(state, &mut handler) {}
    }
}

impl<E> std::fmt::Debug for Engine<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("horizon", &self.horizon)
            .field("pending", &self.queue.len())
            .field("processed", &self.processed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_order_and_advances_clock() {
        let mut eng: Engine<u32> = Engine::new(SimTime::from_secs(100));
        eng.schedule_at(SimTime::from_secs(5), 5);
        eng.schedule_at(SimTime::from_secs(1), 1);
        let mut seen = Vec::new();
        eng.run(&mut seen, |eng, seen, e| {
            seen.push((eng.now().as_secs(), e))
        });
        assert_eq!(seen, vec![(1, 1), (5, 5)]);
        assert_eq!(eng.events_processed(), 2);
    }

    #[test]
    fn horizon_cuts_off_late_events() {
        let mut eng: Engine<&str> = Engine::new(SimTime::from_secs(10));
        eng.schedule_at(SimTime::from_secs(9), "in");
        eng.schedule_at(SimTime::from_secs(11), "out");
        let mut seen: Vec<&str> = Vec::new();
        eng.run(&mut seen, |_, seen, e| seen.push(e));
        assert_eq!(seen, vec!["in"]);
        // clock parks at the horizon
        assert_eq!(eng.now(), SimTime::from_secs(10));
    }

    #[test]
    fn handler_can_reschedule() {
        let mut eng: Engine<u8> = Engine::new(SimTime::from_secs(5));
        eng.schedule_at(SimTime::from_secs(1), 0);
        let mut count = 0u32;
        eng.run(&mut count, |eng, count, _| {
            *count += 1;
            eng.schedule_in(SimDuration::from_secs(1), 0);
        });
        // t = 1,2,3,4,5 inclusive
        assert_eq!(count, 5);
    }

    #[test]
    fn stop_ends_run_early() {
        let mut eng: Engine<u8> = Engine::new(SimTime::from_secs(100));
        for i in 0..10 {
            eng.schedule_at(SimTime::from_secs(i), 0);
        }
        let mut count = 0u32;
        eng.run(&mut count, |eng, count, _| {
            *count += 1;
            if *count == 3 {
                eng.stop();
            }
        });
        assert_eq!(count, 3);
        assert!(eng.is_stopped());
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_past_panics() {
        let mut eng: Engine<u8> = Engine::new(SimTime::from_secs(100));
        eng.schedule_at(SimTime::from_secs(5), 0);
        eng.run(&mut (), |eng, _, _| {
            eng.schedule_at(SimTime::from_secs(1), 0);
        });
    }

    #[test]
    fn checkpoint_round_trip_resumes_identically() {
        let run = |interrupt: bool| {
            let mut eng: Engine<u32> = Engine::new(SimTime::from_secs(6));
            eng.schedule_at(SimTime::from_secs(1), 0);
            let mut seen = Vec::new();
            let handler = |eng: &mut Engine<u32>, seen: &mut Vec<(u64, u32)>, e: u32| {
                seen.push((eng.now().as_secs(), e));
                eng.schedule_in(SimDuration::from_secs(1), e + 1);
            };
            if interrupt {
                // Run half-way, tear the engine apart, rebuild, continue.
                while eng
                    .next_event_time()
                    .is_some_and(|t| t <= SimTime::from_secs(3))
                {
                    eng.step(&mut seen, handler);
                }
                let (now, horizon, stopped, processed) = (
                    eng.now(),
                    eng.horizon(),
                    eng.is_stopped(),
                    eng.events_processed(),
                );
                let q = eng.replace_queue(EventQueue::new());
                let next_seq = q.next_seq();
                let peak = q.peak_len();
                let drained = q.drain_sorted();
                let rebuilt = EventQueue::from_parts(drained, next_seq, peak);
                eng = Engine::from_parts(rebuilt, now, horizon, stopped, processed);
            }
            eng.run(&mut seen, handler);
            (seen, eng.events_processed(), eng.now())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn cancel_through_engine() {
        let mut eng: Engine<u8> = Engine::new(SimTime::from_secs(100));
        let id = eng.schedule_at(SimTime::from_secs(1), 7);
        assert!(eng.cancel(id));
        let mut seen = 0;
        eng.run(&mut seen, |_, seen, _| *seen += 1);
        assert_eq!(seen, 0);
    }
}
