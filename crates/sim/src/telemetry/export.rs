//! Dependency-free metrics export: Prometheus text exposition and
//! collapsed-stack (folded) span profiles.
//!
//! [`MetricsSnapshot`] is a point-in-time view of a run's counters,
//! histograms and gauges, detached from the bus so CLIs can aggregate
//! several sources (a run's telemetry plus supervisor gauges) before
//! writing. [`MetricsSnapshot::to_exposition`] renders the Prometheus text
//! format by hand — the build environment has no client library — and
//! [`parse_exposition`] is the matching strict parser, used as an in-repo
//! `promtool`-style lint so CI can validate what we emit without external
//! tooling.
//!
//! [`fold_spans`] converts span totals into the folded `stack;frames N`
//! format consumed by inferno and speedscope, attributing each span's
//! *self time* (total minus direct children) so frame subtrees sum exactly
//! to the profiler's totals.

use std::fmt::Write as _;

use super::hist::HistSnapshot;
use super::Telemetry;

/// One metric family kind in an exposition document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FamilyKind {
    /// Monotonic counter (`_total` suffix).
    Counter,
    /// Instantaneous value.
    Gauge,
    /// Bucketed distribution (`_bucket`/`_sum`/`_count` series).
    Histogram,
}

impl FamilyKind {
    fn as_str(self) -> &'static str {
        match self {
            FamilyKind::Counter => "counter",
            FamilyKind::Gauge => "gauge",
            FamilyKind::Histogram => "histogram",
        }
    }
}

/// A point-in-time bundle of metrics ready for export.
#[derive(Debug, Default)]
pub struct MetricsSnapshot {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    hists: Vec<(String, HistSnapshot)>,
}

impl MetricsSnapshot {
    /// An empty snapshot to aggregate into.
    pub fn new() -> Self {
        Self::default()
    }

    /// Captures every counter and histogram currently on a telemetry bus
    /// (wall-clock histograms included — the exposition format is a
    /// monitoring surface, not a determinism surface).
    pub fn from_telemetry(t: &Telemetry) -> Self {
        let mut snap = MetricsSnapshot::new();
        for (name, value) in t.counters().sorted() {
            snap.push_counter(name, value);
        }
        for (name, hist, _wall) in t.histograms().sorted() {
            snap.push_hist(name, hist.snapshot());
        }
        snap
    }

    /// Adds a counter sample (dotted names welcome; sanitized on export).
    pub fn push_counter(&mut self, name: &str, value: u64) {
        self.counters.push((name.to_owned(), value));
    }

    /// Adds a gauge sample.
    pub fn push_gauge(&mut self, name: &str, value: f64) {
        self.gauges.push((name.to_owned(), value));
    }

    /// Adds a histogram snapshot.
    pub fn push_hist(&mut self, name: &str, hist: HistSnapshot) {
        self.hists.push((name.to_owned(), hist));
    }

    /// Number of histogram families in the snapshot.
    pub fn hist_families(&self) -> usize {
        self.hists.len()
    }

    /// Renders the Prometheus text exposition format: `# HELP`/`# TYPE`
    /// headers, `_total`-suffixed counters, gauges, and full cumulative
    /// histogram series ending in `le="+Inf"`. Deterministic for a given
    /// snapshot; families render sorted by name within each kind.
    pub fn to_exposition(&self) -> String {
        let mut out = String::new();
        let mut counters = self.counters.clone();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        for (name, value) in &counters {
            let metric = format!("{}_total", metric_name(name));
            let _ = writeln!(out, "# HELP {metric} Telemetry counter {name}.");
            let _ = writeln!(out, "# TYPE {metric} counter");
            let _ = writeln!(out, "{metric} {value}");
        }
        let mut gauges = self.gauges.clone();
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        for (name, value) in &gauges {
            let metric = metric_name(name);
            let _ = writeln!(out, "# HELP {metric} Gauge {name}.");
            let _ = writeln!(out, "# TYPE {metric} gauge");
            let _ = writeln!(out, "{metric} {value}");
        }
        let mut hists: Vec<&(String, HistSnapshot)> = self.hists.iter().collect();
        hists.sort_by(|a, b| a.0.cmp(&b.0));
        for (name, hist) in hists {
            let metric = metric_name(name);
            let _ = writeln!(out, "# HELP {metric} Distribution of {name}.");
            let _ = writeln!(out, "# TYPE {metric} histogram");
            let mut cumulative = 0u64;
            for (le, count) in hist.ascending() {
                cumulative += count;
                let _ = writeln!(out, "{metric}_bucket{{le=\"{le}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{metric}_bucket{{le=\"+Inf\"}} {}", hist.count);
            let _ = writeln!(
                out,
                "{metric}_sum {}",
                if hist.count == 0 { 0.0 } else { hist.sum }
            );
            let _ = writeln!(out, "{metric}_count {}", hist.count);
        }
        out
    }
}

/// Sanitizes a dotted counter name into a Prometheus metric name:
/// `cocoa_` prefix, every non-`[a-zA-Z0-9_]` byte becomes `_`.
pub fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(6 + name.len());
    out.push_str("cocoa_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// One parsed metric family from an exposition document.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedFamily {
    /// Metric family name (without `_bucket`/`_sum`/`_count` suffixes).
    pub name: String,
    /// Declared kind.
    pub kind: FamilyKind,
    /// Plain samples `(value)` for counters/gauges; for histograms the
    /// `_count` value.
    pub value: f64,
    /// Histogram buckets as `(le, cumulative count)`, `+Inf` last (empty
    /// for counters and gauges).
    pub buckets: Vec<(f64, f64)>,
    /// Histogram `_sum` (0 for counters and gauges).
    pub sum: f64,
}

fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Strict parser for the subset of the Prometheus text format that
/// [`MetricsSnapshot::to_exposition`] emits — the in-repo `promtool` lint.
///
/// Validates: every sample is preceded by a `# TYPE` for its family;
/// metric names are well-formed; values parse; histogram bucket series
/// are cumulative (non-decreasing), ordered by ascending `le`, terminated
/// by `le="+Inf"`, and consistent with `_count`.
pub fn parse_exposition(text: &str) -> Result<Vec<ParsedFamily>, String> {
    let mut families: Vec<ParsedFamily> = Vec::new();
    let mut types: Vec<(String, FamilyKind)> = Vec::new();
    let kind_of = |types: &[(String, FamilyKind)], name: &str| -> Option<FamilyKind> {
        types.iter().find(|(n, _)| n == name).map(|&(_, k)| k)
    };
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts
                .next()
                .ok_or_else(|| format!("line {n}: TYPE without a name"))?;
            let kind = match parts.next() {
                Some("counter") => FamilyKind::Counter,
                Some("gauge") => FamilyKind::Gauge,
                Some("histogram") => FamilyKind::Histogram,
                other => return Err(format!("line {n}: unknown TYPE {other:?}")),
            };
            if !valid_metric_name(name) {
                return Err(format!("line {n}: invalid metric name '{name}'"));
            }
            if kind_of(&types, name).is_some() {
                return Err(format!("line {n}: duplicate TYPE for '{name}'"));
            }
            types.push((name.to_owned(), kind));
            if kind == FamilyKind::Histogram {
                families.push(ParsedFamily {
                    name: name.to_owned(),
                    kind,
                    value: 0.0,
                    buckets: Vec::new(),
                    sum: 0.0,
                });
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP and comments
        }
        // Sample line: name[{labels}] value
        let (name_labels, value_str) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {n}: sample without a value"))?;
        let value: f64 = value_str
            .parse()
            .map_err(|_| format!("line {n}: unparseable value '{value_str}'"))?;
        let (name, labels) = match name_labels.split_once('{') {
            Some((name, rest)) => {
                let labels = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {n}: unterminated label set"))?;
                (name, Some(labels))
            }
            None => (name_labels, None),
        };
        if !valid_metric_name(name) {
            return Err(format!("line {n}: invalid metric name '{name}'"));
        }
        // Resolve the family: histogram series carry suffixes.
        let (family, series) = if let Some(f) = name.strip_suffix("_bucket") {
            (f, "bucket")
        } else if let Some(f) = name
            .strip_suffix("_sum")
            .filter(|f| kind_of(&types, f) == Some(FamilyKind::Histogram))
        {
            (f, "sum")
        } else if let Some(f) = name
            .strip_suffix("_count")
            .filter(|f| kind_of(&types, f) == Some(FamilyKind::Histogram))
        {
            (f, "count")
        } else {
            (name, "plain")
        };
        let kind = kind_of(&types, family)
            .ok_or_else(|| format!("line {n}: sample '{name}' has no preceding TYPE"))?;
        match (kind, series) {
            (FamilyKind::Histogram, "bucket") => {
                let labels =
                    labels.ok_or_else(|| format!("line {n}: _bucket without an le label"))?;
                let le_str = labels
                    .strip_prefix("le=\"")
                    .and_then(|s| s.strip_suffix('"'))
                    .ok_or_else(|| format!("line {n}: malformed le label '{labels}'"))?;
                let le = if le_str == "+Inf" {
                    f64::INFINITY
                } else {
                    le_str
                        .parse()
                        .map_err(|_| format!("line {n}: unparseable le '{le_str}'"))?
                };
                let fam = families
                    .iter_mut()
                    .rfind(|f| f.name == family)
                    .expect("histogram family registered at TYPE");
                if let Some(&(prev_le, prev_count)) = fam.buckets.last() {
                    if le <= prev_le {
                        return Err(format!("line {n}: le series not ascending for '{family}'"));
                    }
                    if value < prev_count {
                        return Err(format!(
                            "line {n}: bucket counts not cumulative for '{family}'"
                        ));
                    }
                }
                fam.buckets.push((le, value));
            }
            (FamilyKind::Histogram, "sum") => {
                let fam = families
                    .iter_mut()
                    .rfind(|f| f.name == family)
                    .expect("histogram family registered at TYPE");
                fam.sum = value;
            }
            (FamilyKind::Histogram, "count") => {
                let fam = families
                    .iter_mut()
                    .rfind(|f| f.name == family)
                    .expect("histogram family registered at TYPE");
                fam.value = value;
            }
            (FamilyKind::Histogram, _) => {
                return Err(format!(
                    "line {n}: bare sample '{name}' for histogram family"
                ));
            }
            (FamilyKind::Counter, "plain") => {
                if !name.ends_with("_total") {
                    return Err(format!("line {n}: counter '{name}' must end in _total"));
                }
                families.push(ParsedFamily {
                    name: family.to_owned(),
                    kind,
                    value,
                    buckets: Vec::new(),
                    sum: 0.0,
                });
            }
            (FamilyKind::Gauge, "plain") => {
                families.push(ParsedFamily {
                    name: family.to_owned(),
                    kind,
                    value,
                    buckets: Vec::new(),
                    sum: 0.0,
                });
            }
            (k, s) => {
                return Err(format!("line {n}: {s} series on {} family", k.as_str()));
            }
        }
    }
    // Histogram closing checks.
    for fam in &families {
        if fam.kind != FamilyKind::Histogram {
            continue;
        }
        match fam.buckets.last() {
            Some(&(le, count)) if le.is_infinite() => {
                if count != fam.value {
                    return Err(format!(
                        "histogram '{}': +Inf bucket {count} != _count {}",
                        fam.name, fam.value
                    ));
                }
            }
            _ => {
                return Err(format!(
                    "histogram '{}': bucket series must end with le=\"+Inf\"",
                    fam.name
                ));
            }
        }
        if !fam.sum.is_finite() {
            return Err(format!("histogram '{}': non-finite _sum", fam.name));
        }
    }
    Ok(families)
}

/// Folds span totals into collapsed stacks.
///
/// The span naming convention (see [`super::SpanProfiler`]) defines the
/// hierarchy: `run.total` is the root, other `run.*` spans are its direct
/// children, `event.*` spans nest under `run.event_loop`, and the
/// subsystem spans nest under the event category whose handler invokes
/// them (`channel.sample` under `event.transmit`, `grid.update` and
/// `mesh.handle` under `event.tx_end`, `grid.fix` under
/// `event.robot_window_end`, `mobility.step` under `event.move_tick` —
/// unknown names fall back to `run.event_loop`). Each output line carries
/// the span's *self* time — its total minus its direct children's totals,
/// in exact integer arithmetic (saturating at zero if children overlap) —
/// so that summing a frame's subtree reproduces the profiler's total for
/// that span exactly whenever the data nests consistently.
///
/// Input: `(name, total_ns)` pairs. Output: `(stack, self_ns)` lines with
/// `;`-separated frames, zero-valued lines omitted, sorted by stack.
pub fn fold_spans(spans: &[(&str, u128)]) -> Vec<(String, u128)> {
    let has = |name: &str| spans.iter().any(|(n, _)| *n == name);
    let parent = |name: &str| -> Option<&'static str> {
        // Preferred parent first; fall back outward so partial span sets
        // (filtered traces, other instrumentation) still fold sensibly.
        let candidates: &[&str] = match name {
            "run.total" => return None,
            n if n.starts_with("run.") => &["run.total"],
            "channel.sample" => &["event.transmit", "run.event_loop", "run.total"],
            "channel.sample_reply" => &["event.mesh_reply", "run.event_loop", "run.total"],
            "channel.sample_rebroadcast" => {
                &["event.mesh_rebroadcast", "run.event_loop", "run.total"]
            }
            "grid.update" | "mesh.handle" => &["event.tx_end", "run.event_loop", "run.total"],
            "grid.fix" => &["event.robot_window_end", "run.event_loop", "run.total"],
            "mobility.step" => &["event.move_tick", "run.event_loop", "run.total"],
            _ => &["run.event_loop", "run.total"],
        };
        candidates.iter().copied().find(|c| has(c))
    };
    let stack_of = |name: &str| -> String {
        let mut frames = vec![name.to_owned()];
        let mut cur = name.to_owned();
        while let Some(p) = parent(&cur) {
            frames.push(p.to_owned());
            cur = p.to_owned();
        }
        frames.reverse();
        frames.join(";")
    };
    let mut out = Vec::new();
    for &(name, total) in spans {
        let children: u128 = spans
            .iter()
            .filter(|(n, _)| *n != name && parent(n) == Some(name))
            .map(|&(_, t)| t)
            .sum();
        let self_ns = total.saturating_sub(children);
        if self_ns > 0 {
            out.push((stack_of(name), self_ns));
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Renders folded stacks as the textual format inferno/speedscope read:
/// one `stack;frames value` line each.
pub fn render_folded(folded: &[(String, u128)]) -> String {
    let mut out = String::new();
    for (stack, value) in folded {
        let _ = writeln!(out, "{stack} {value}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::hist::Histogram;
    use super::super::{Telemetry, TelemetryLevel};
    use super::*;

    fn sample_snapshot() -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        snap.push_counter("traffic.fixes", 42);
        snap.push_counter("mesh.data_delivered", 7);
        snap.push_counter("estimator.ekf.beacons_rejected_outlier", 5);
        snap.push_counter("estimator.ekf.updates_gated", 2);
        snap.push_gauge("sweep.points_total", 3.0);
        let mut h = Histogram::new();
        for x in [0.5, 1.0, 2.0, -3.0, 0.0] {
            h.record(x);
        }
        snap.push_hist("run.robot_error_m", h.snapshot());
        snap
    }

    #[test]
    fn exposition_round_trips_through_the_validator() {
        let text = sample_snapshot().to_exposition();
        let families = parse_exposition(&text).expect("own output must validate");
        assert_eq!(families.len(), 6);
        // The estimator-backend namespace survives the sanitizer and the
        // strict parser like every other dotted counter name.
        let outliers = families
            .iter()
            .find(|f| f.name == "cocoa_estimator_ekf_beacons_rejected_outlier_total")
            .unwrap();
        assert_eq!(outliers.value, 5.0);
        let hist = families
            .iter()
            .find(|f| f.kind == FamilyKind::Histogram)
            .unwrap();
        assert_eq!(hist.name, "cocoa_run_robot_error_m");
        assert_eq!(hist.value, 5.0);
        assert_eq!(hist.sum, 0.5);
        assert!(hist.buckets.last().unwrap().0.is_infinite());
        // Counter family names carry the _total suffix, as in the classic
        // Prometheus text format.
        let counter = families
            .iter()
            .find(|f| f.name == "cocoa_traffic_fixes_total")
            .unwrap();
        assert_eq!(counter.value, 42.0);
    }

    #[test]
    fn empty_histogram_exposes_consistent_zeroes() {
        let mut snap = MetricsSnapshot::new();
        snap.push_hist("run.empty", Histogram::new().snapshot());
        let text = snap.to_exposition();
        assert!(text.contains("cocoa_run_empty_bucket{le=\"+Inf\"} 0"));
        assert!(text.contains("cocoa_run_empty_sum 0"));
        parse_exposition(&text).expect("empty histogram must validate");
    }

    #[test]
    fn from_telemetry_captures_counters_and_hists() {
        let mut t = Telemetry::new(TelemetryLevel::Counters);
        t.absorb("traffic.fixes", 3);
        let h = t.hist("run.robot_error_m");
        t.hist_record(h, 1.5);
        let snap = MetricsSnapshot::from_telemetry(&t);
        let text = snap.to_exposition();
        assert!(text.contains("cocoa_traffic_fixes_total 3"));
        assert!(text.contains("cocoa_run_robot_error_m_count 1"));
        parse_exposition(&text).unwrap();
    }

    #[test]
    fn validator_rejects_missing_type() {
        assert!(parse_exposition("cocoa_x_total 1\n").is_err());
    }

    #[test]
    fn validator_rejects_non_cumulative_buckets() {
        let bad = "# TYPE cocoa_h histogram\n\
                   cocoa_h_bucket{le=\"1\"} 5\n\
                   cocoa_h_bucket{le=\"2\"} 3\n\
                   cocoa_h_bucket{le=\"+Inf\"} 5\n\
                   cocoa_h_sum 1\ncocoa_h_count 5\n";
        assert!(parse_exposition(bad).unwrap_err().contains("cumulative"));
    }

    #[test]
    fn validator_rejects_unordered_le() {
        let bad = "# TYPE cocoa_h histogram\n\
                   cocoa_h_bucket{le=\"2\"} 1\n\
                   cocoa_h_bucket{le=\"1\"} 2\n";
        assert!(parse_exposition(bad).unwrap_err().contains("ascending"));
    }

    #[test]
    fn validator_rejects_missing_inf_bucket() {
        let bad = "# TYPE cocoa_h histogram\n\
                   cocoa_h_bucket{le=\"1\"} 1\n\
                   cocoa_h_sum 1\ncocoa_h_count 1\n";
        assert!(parse_exposition(bad).unwrap_err().contains("+Inf"));
    }

    #[test]
    fn validator_rejects_count_mismatch() {
        let bad = "# TYPE cocoa_h histogram\n\
                   cocoa_h_bucket{le=\"+Inf\"} 4\n\
                   cocoa_h_sum 1\ncocoa_h_count 5\n";
        assert!(parse_exposition(bad).unwrap_err().contains("_count"));
    }

    #[test]
    fn validator_rejects_bad_names() {
        assert!(parse_exposition("# TYPE 9bad counter\n").is_err());
    }

    #[test]
    fn metric_name_sanitizes_dots() {
        assert_eq!(metric_name("mesh.odmrp.joins"), "cocoa_mesh_odmrp_joins");
        assert_eq!(metric_name("a-b c"), "cocoa_a_b_c");
    }

    #[test]
    fn fold_attributes_self_time_exactly() {
        let spans: Vec<(&str, u128)> = vec![
            ("run.total", 1000),
            ("run.calibrate", 100),
            ("run.event_loop", 850),
            ("event.transmit", 500),
            ("event.metrics", 200),
            ("grid.update", 100),
        ];
        let folded = fold_spans(&spans);
        let value = |stack: &str| {
            folded
                .iter()
                .find(|(s, _)| s == stack)
                .map_or(0, |&(_, v)| v)
        };
        assert_eq!(value("run.total"), 50); // 1000 - 100 - 850
        assert_eq!(value("run.total;run.calibrate"), 100);
        assert_eq!(value("run.total;run.event_loop"), 50); // 850 - 500 - 200 - 100
        assert_eq!(value("run.total;run.event_loop;event.transmit"), 500);
        assert_eq!(value("run.total;run.event_loop;grid.update"), 100);
        // Subtree sums reproduce the profiler totals exactly.
        let subtree = |frame: &str| -> u128 {
            folded
                .iter()
                .filter(|(s, _)| s.split(';').any(|f| f == frame))
                .map(|&(_, v)| v)
                .sum()
        };
        for &(name, total) in &spans {
            assert_eq!(subtree(name), total, "subtree of {name}");
        }
    }

    #[test]
    fn fold_without_root_keeps_orphans() {
        let spans: Vec<(&str, u128)> = vec![("grid.update", 10), ("channel.sample", 5)];
        let folded = fold_spans(&spans);
        assert_eq!(folded.len(), 2);
        assert!(folded.iter().all(|(s, _)| !s.contains(';')));
    }

    #[test]
    fn render_folded_is_line_per_stack() {
        let folded = vec![("a;b".to_owned(), 3u128)];
        assert_eq!(render_folded(&folded), "a;b 3\n");
    }
}
