//! Log-linear bucketed histograms for the telemetry bus.
//!
//! An HDR-style fixed bucket layout: every finite `f64` maps to one of
//! [`NUM_BUCKETS`] buckets — a dedicated zero bucket, plus sign-mirrored
//! log-linear buckets with [`SUBS`] linear sub-buckets per power of two
//! between `2^`[`MIN_EXP`] and `2^`([`MAX_EXP`]` + 1`). The bucket index is
//! computed directly from the IEEE-754 bit pattern (exponent + top mantissa
//! bits), so recording is exact integer arithmetic: no `log`, no rounding
//! mode, no libm — identical inputs always land in identical buckets on
//! every platform.
//!
//! Recording a sample is a bounds check and three adds; nothing allocates
//! after construction and nothing consults a clock or RNG, which is what
//! lets the bus guarantee a zero observer effect on simulation runs.
//!
//! Quantile extraction deliberately has no second percentile
//! implementation: buckets expand to their representative values and the
//! result is routed through [`crate::stats::sort_finite`] and
//! [`crate::stats::percentile_sorted`], so histogram quantiles agree with
//! every other quantile in the workspace up to bucket resolution (better
//! than 12.5 % by construction; `min`/`max` are tracked exactly).

use crate::stats::{percentile_sorted, sort_finite};

/// Number of linear sub-bucket bits per octave (2^3 = 8 sub-buckets, so
/// bucket width is at most 12.5 % of the value).
pub const SUB_BITS: u32 = 3;

/// Linear sub-buckets per power of two.
pub const SUBS: usize = 1 << SUB_BITS;

/// Smallest represented binary exponent: magnitudes below `2^MIN_EXP`
/// (≈ 9.5e-7) clamp into the first bucket of their sign.
pub const MIN_EXP: i32 = -20;

/// Largest represented binary exponent: magnitudes at or above
/// `2^(MAX_EXP + 1)` (≈ 1.1e12) clamp into the last bucket of their sign.
pub const MAX_EXP: i32 = 39;

/// Log-linear buckets per sign.
const SIGN_BUCKETS: usize = (MAX_EXP - MIN_EXP + 1) as usize * SUBS;

/// Total buckets: one zero bucket plus mirrored positive and negative
/// ranges.
pub const NUM_BUCKETS: usize = 1 + 2 * SIGN_BUCKETS;

/// Exact `2^exp` as an `f64`, built from the bit pattern (no libm).
fn pow2(exp: i32) -> f64 {
    f64::from_bits(((exp + 1023) as u64) << 52)
}

/// The sign-local bucket of a strictly positive finite magnitude.
fn magnitude_bucket(x: f64) -> usize {
    debug_assert!(x > 0.0 && x.is_finite());
    let bits = x.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i32 - 1023;
    if exp < MIN_EXP {
        return 0;
    }
    if exp > MAX_EXP {
        return SIGN_BUCKETS - 1;
    }
    let sub = ((bits >> (52 - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
    (exp - MIN_EXP) as usize * SUBS + sub
}

/// The global bucket index of a finite sample: `0` is the zero bucket,
/// `1..=SIGN_BUCKETS` the positive range, the rest the negative mirror.
pub fn bucket_index(x: f64) -> usize {
    debug_assert!(x.is_finite());
    if x == 0.0 {
        0
    } else if x > 0.0 {
        1 + magnitude_bucket(x)
    } else {
        1 + SIGN_BUCKETS + magnitude_bucket(-x)
    }
}

/// The numeric range `[lo, hi)` covered by a global bucket index (for the
/// zero bucket both bounds are `0`; negative buckets return negative
/// bounds with `lo < hi`).
///
/// # Panics
///
/// Panics if `idx >= NUM_BUCKETS`.
pub fn bucket_bounds(idx: usize) -> (f64, f64) {
    assert!(idx < NUM_BUCKETS, "bucket index {idx} out of range");
    if idx == 0 {
        return (0.0, 0.0);
    }
    let (neg, b) = if idx <= SIGN_BUCKETS {
        (false, idx - 1)
    } else {
        (true, idx - 1 - SIGN_BUCKETS)
    };
    let exp = MIN_EXP + (b / SUBS) as i32;
    let sub = (b % SUBS) as f64;
    let lo = pow2(exp) * (1.0 + sub / SUBS as f64);
    let hi = pow2(exp) * (1.0 + (sub + 1.0) / SUBS as f64);
    if neg {
        (-hi, -lo)
    } else {
        (lo, hi)
    }
}

/// The representative value a bucket expands to for quantile extraction:
/// the bucket edge nearest zero (exact for the zero bucket).
pub fn bucket_value(idx: usize) -> f64 {
    let (lo, hi) = bucket_bounds(idx);
    if lo >= 0.0 {
        lo
    } else {
        hi
    }
}

/// The upper inclusive boundary used for Prometheus `le` labels: samples
/// in the bucket are all `<=` this value.
pub fn bucket_le(idx: usize) -> f64 {
    // Positive buckets [lo, hi) clamp up to hi; negative buckets (lo, hi]
    // are bounded by hi directly. Either way hi is the inclusive ceiling.
    bucket_bounds(idx).1
}

/// A deterministic log-linear histogram with exact count/sum/min/max.
///
/// # Examples
///
/// ```
/// use cocoa_sim::telemetry::hist::Histogram;
///
/// let mut h = Histogram::new();
/// for x in [1.0, 2.0, 2.0, 40.0] {
///     h.record(x);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.max(), 40.0);
/// let p = h.percentiles(&[0.5]);
/// assert!((p[0] - 2.0).abs() / 2.0 < 0.125); // bucket resolution
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram (allocates its fixed bucket array once).
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample: a bucket increment plus exact running
    /// count/sum/min/max. No allocation, no clock, no RNG.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN or infinite — a non-finite sample would poison
    /// the sum and has no bucket.
    #[inline]
    pub fn record(&mut self, x: f64) {
        assert!(x.is_finite(), "histogram samples must be finite, got {x}");
        self.counts[bucket_index(x)] += 1;
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of all samples (left-to-right accumulation order).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact smallest sample (+∞ if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Exact largest sample (−∞ if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Non-empty buckets as `(global index, count)` pairs in index order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Merges another histogram (bucket layouts are global constants, so
    /// any two histograms merge).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Quantiles at bucket resolution, routed through the workspace's one
    /// quantile implementation ([`sort_finite`] + [`percentile_sorted`]):
    /// each bucket expands to its representative value repeated by count.
    /// `p = 0`/`p = 1` are patched with the exactly tracked min/max.
    ///
    /// Returns an empty vector when the histogram is empty.
    ///
    /// # Panics
    ///
    /// Panics if any `p` is outside `[0, 1]`.
    pub fn percentiles(&self, ps: &[f64]) -> Vec<f64> {
        if self.count == 0 {
            return Vec::new();
        }
        let mut values = Vec::with_capacity(self.count as usize);
        for (idx, c) in self.nonzero_buckets() {
            let v = bucket_value(idx);
            values.extend(std::iter::repeat_n(v, c as usize));
        }
        sort_finite(&mut values);
        ps.iter()
            .map(|&p| {
                if p == 0.0 {
                    self.min
                } else if p == 1.0 {
                    self.max
                } else {
                    percentile_sorted(&values, p)
                }
            })
            .collect()
    }

    /// A compact snapshot for serialization and export.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: self.nonzero_buckets().map(|(i, c)| (i as u32, c)).collect(),
            count: self.count,
            sum: self.sum,
            min: self.min,
            max: self.max,
        }
    }

    /// Rebuilds a histogram from a snapshot (inverse of
    /// [`Histogram::snapshot`]).
    ///
    /// # Panics
    ///
    /// Panics if a bucket index is out of range.
    pub fn from_snapshot(snap: &HistSnapshot) -> Self {
        let mut h = Histogram::new();
        for &(idx, c) in &snap.buckets {
            h.counts[idx as usize] = c;
        }
        h.count = snap.count;
        h.sum = snap.sum;
        h.min = snap.min;
        h.max = snap.max;
        h
    }
}

/// A sparse, serializable view of one histogram: only non-empty buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct HistSnapshot {
    /// `(global bucket index, count)` pairs, index-ascending.
    pub buckets: Vec<(u32, u64)>,
    /// Total samples.
    pub count: u64,
    /// Exact sum.
    pub sum: f64,
    /// Exact minimum (+∞ if empty).
    pub min: f64,
    /// Exact maximum (−∞ if empty).
    pub max: f64,
}

impl HistSnapshot {
    /// Buckets as `(upper bound, count)` sorted ascending by bound — the
    /// order a Prometheus `le` series requires (negative buckets first,
    /// then zero, then positive).
    pub fn ascending(&self) -> Vec<(f64, u64)> {
        let mut out: Vec<(f64, u64)> = self
            .buckets
            .iter()
            .map(|&(i, c)| (bucket_le(i as usize), c))
            .collect();
        out.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("bucket bounds are finite"));
        out
    }
}

/// Handle to one registered histogram (index into the registry, `Copy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistId(pub(crate) usize);

/// Named histograms with stable, sorted export order; mirrors
/// [`super::CounterRegistry`].
///
/// Each histogram is flagged *deterministic* or *wall-clock*: wall-clock
/// histograms (span durations, sweep wall time) are the only ones allowed
/// to hold non-reproducible data and are excluded from snapshots and
/// equivalence checks, exactly like span timers.
#[derive(Debug, Default)]
pub struct HistogramRegistry {
    names: Vec<&'static str>,
    hists: Vec<Histogram>,
    wall: Vec<bool>,
}

impl HistogramRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `name` (idempotent) and returns its handle. `wall` marks
    /// the histogram as wall-clock (non-deterministic); the flag of an
    /// already-registered name is left unchanged.
    pub fn register(&mut self, name: &'static str, wall: bool) -> HistId {
        if let Some(i) = self.names.iter().position(|n| *n == name) {
            return HistId(i);
        }
        self.names.push(name);
        self.hists.push(Histogram::new());
        self.wall.push(wall);
        HistId(self.names.len() - 1)
    }

    /// Records a sample into a registered histogram.
    #[inline]
    pub fn record(&mut self, id: HistId, x: f64) {
        self.hists[id.0].record(x);
    }

    /// The histogram registered under `name`, if any.
    pub fn get(&self, name: &str) -> Option<&Histogram> {
        self.names
            .iter()
            .position(|n| *n == name)
            .map(|i| &self.hists[i])
    }

    /// Whether `name` is registered as wall-clock.
    pub fn is_wall(&self, name: &str) -> Option<bool> {
        self.names
            .iter()
            .position(|n| *n == name)
            .map(|i| self.wall[i])
    }

    /// Number of registered histograms.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no histograms are registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All histograms sorted by name: `(name, histogram, wall)`.
    pub fn sorted(&self) -> Vec<(&'static str, &Histogram, bool)> {
        let mut out: Vec<(&'static str, &Histogram, bool)> = (0..self.names.len())
            .map(|i| (self.names[i], &self.hists[i], self.wall[i]))
            .collect();
        out.sort_by_key(|(n, _, _)| *n);
        out
    }

    /// Deterministic histograms only, sorted by name — the checkpointable
    /// subset (wall-clock histograms restart at zero on resume, like span
    /// timers).
    pub fn deterministic_sorted(&self) -> Vec<(&'static str, &Histogram)> {
        self.sorted()
            .into_iter()
            .filter(|(_, _, wall)| !wall)
            .map(|(n, h, _)| (n, h))
            .collect()
    }

    /// Restores a histogram's state by name (snapshot resume path). The
    /// name is registered as deterministic if new.
    pub fn restore(&mut self, name: &'static str, hist: Histogram) {
        let id = self.register(name, false);
        self.hists[id.0] = hist;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_math_round_trips() {
        for &x in &[
            1e-6, 0.001, 0.25, 0.9, 1.0, 1.5, 7.0, 64.0, 1000.0, 9.9e11, 5e12,
        ] {
            for &v in &[x, -x] {
                let idx = bucket_index(v);
                let (lo, hi) = bucket_bounds(idx);
                // Clamped edges only contain, interior buckets bracket:
                // positive buckets are [lo, hi), negative ones (lo, hi].
                if (MIN_EXP..=MAX_EXP).contains(&(v.abs().log2().floor() as i32)) {
                    if v > 0.0 {
                        assert!(lo <= v && v < hi, "{v} not in [{lo}, {hi}) (idx {idx})");
                    } else {
                        assert!(lo < v && v <= hi, "{v} not in ({lo}, {hi}] (idx {idx})");
                    }
                }
            }
        }
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-0.0), 0);
        assert_eq!(bucket_bounds(0), (0.0, 0.0));
    }

    #[test]
    fn bucket_width_is_within_an_eighth() {
        for &x in &[0.01, 1.0, 3.7, 250.0, 1e6] {
            let (lo, hi) = bucket_bounds(bucket_index(x));
            assert!(
                (hi - lo) / lo <= 0.125 + 1e-12,
                "bucket [{lo},{hi}) too wide"
            );
        }
    }

    #[test]
    fn tiny_and_huge_magnitudes_clamp() {
        let tiny = bucket_index(1e-30);
        let huge = bucket_index(1e30);
        assert_eq!(tiny, 1); // first positive bucket
        assert_eq!(huge, SIGN_BUCKETS); // last positive bucket
        assert_eq!(bucket_index(-1e-30), 1 + SIGN_BUCKETS);
        assert_eq!(bucket_index(-1e30), 2 * SIGN_BUCKETS);
    }

    #[test]
    fn record_tracks_exact_extremes_and_sum() {
        let mut h = Histogram::new();
        for x in [3.0, -2.5, 0.0, 10.0] {
            h.record(x);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 10.5);
        assert_eq!(h.min(), -2.5);
        assert_eq!(h.max(), 10.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_is_rejected() {
        Histogram::new().record(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn infinity_is_rejected() {
        Histogram::new().record(f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_infinity_is_rejected() {
        Histogram::new().record(f64::NEG_INFINITY);
    }

    #[test]
    fn empty_percentiles_are_empty() {
        assert!(Histogram::new().percentiles(&[0.5, 0.99]).is_empty());
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let mut h = Histogram::new();
        h.record(42.0);
        let ps = h.percentiles(&[0.0, 0.5, 0.9, 0.99, 1.0]);
        assert_eq!(ps[0], 42.0);
        assert_eq!(ps[4], 42.0);
        for &p in &ps[1..4] {
            assert!((p - 42.0).abs() / 42.0 <= 0.125, "p {p}");
        }
    }

    #[test]
    fn all_equal_samples_collapse() {
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.record(7.5);
        }
        let ps = h.percentiles(&[0.0, 0.5, 1.0]);
        assert_eq!(ps[0], 7.5);
        assert_eq!(ps[2], 7.5);
        assert!((ps[1] - 7.5).abs() / 7.5 <= 0.125);
    }

    #[test]
    fn percentiles_track_distribution_at_bucket_resolution() {
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.record(f64::from(i));
        }
        let ps = h.percentiles(&[0.5, 0.9, 0.99]);
        for (p, expect) in ps.iter().zip([500.0, 900.0, 990.0]) {
            assert!(
                (p - expect).abs() / expect <= 0.13,
                "quantile {p} vs {expect}"
            );
        }
    }

    #[test]
    fn negative_samples_order_correctly() {
        let mut h = Histogram::new();
        for x in [-90.0, -80.0, -70.0, -60.0] {
            h.record(x);
        }
        let ps = h.percentiles(&[0.0, 1.0]);
        assert_eq!(ps, vec![-90.0, -60.0]);
        // The ascending view runs most-negative to least-negative.
        let asc = h.snapshot().ascending();
        for w in asc.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn snapshot_round_trips() {
        let mut h = Histogram::new();
        for x in [0.0, 1.0, -3.5, 900.0, 900.0] {
            h.record(x);
        }
        let snap = h.snapshot();
        assert_eq!(Histogram::from_snapshot(&snap), h);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..200).map(|i| f64::from(i) * 0.77 - 30.0).collect();
        let mut all = Histogram::new();
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for &x in &xs {
            all.record(x);
        }
        for &x in &xs[..71] {
            a.record(x);
        }
        for &x in &xs[71..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        assert_eq!(a.snapshot().buckets, all.snapshot().buckets);
    }

    #[test]
    fn registry_sorts_and_flags() {
        let mut reg = HistogramRegistry::new();
        let w = reg.register("z.wall", true);
        let d = reg.register("a.det", false);
        reg.record(w, 1.0);
        reg.record(d, 2.0);
        assert_eq!(reg.register("a.det", true), d); // idempotent, flag kept
        assert!(!reg.is_wall("a.det").unwrap());
        assert!(reg.is_wall("z.wall").unwrap());
        let names: Vec<&str> = reg.sorted().iter().map(|(n, _, _)| *n).collect();
        assert_eq!(names, vec!["a.det", "z.wall"]);
        let det: Vec<&str> = reg.deterministic_sorted().iter().map(|(n, _)| *n).collect();
        assert_eq!(det, vec!["a.det"]);
    }
}
