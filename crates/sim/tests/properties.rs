//! Property-based tests for the event-engine invariants.

use cocoa_sim::prelude::*;
use proptest::prelude::*;

proptest! {
    /// Events always pop in non-decreasing time order, regardless of the
    /// insertion order.
    #[test]
    fn queue_pops_sorted(times in proptest::collection::vec(0u64..10_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut popped = 0usize;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// Same-time events preserve insertion (FIFO) order.
    #[test]
    fn queue_fifo_within_equal_times(groups in proptest::collection::vec(0u64..20, 1..100)) {
        let mut q = EventQueue::new();
        for (i, &t) in groups.iter().enumerate() {
            q.push(SimTime::from_secs(t), i);
        }
        let mut last_seq_per_time = std::collections::HashMap::new();
        while let Some((t, seq)) = q.pop() {
            if let Some(&prev) = last_seq_per_time.get(&t) {
                prop_assert!(seq > prev, "FIFO violated at {t}: {seq} after {prev}");
            }
            last_seq_per_time.insert(t, seq);
        }
    }

    /// Cancelling an arbitrary subset delivers exactly the complement.
    #[test]
    fn cancellation_delivers_complement(
        times in proptest::collection::vec(0u64..1000, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 100),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (q.push(SimTime::from_micros(t), i), i))
            .collect();
        let mut expect: std::collections::HashSet<usize> =
            (0..times.len()).collect();
        for (idx, (id, i)) in ids.iter().enumerate() {
            if cancel_mask[idx % cancel_mask.len()] {
                prop_assert!(q.cancel(*id));
                expect.remove(i);
            }
        }
        let mut got = std::collections::HashSet::new();
        while let Some((_, i)) = q.pop() {
            got.insert(i);
        }
        prop_assert_eq!(got, expect);
    }

    /// The engine clock never goes backwards and never exceeds the horizon.
    #[test]
    fn engine_clock_monotone(
        delays in proptest::collection::vec(1u64..5_000_000, 1..50),
        horizon_s in 1u64..100,
    ) {
        let mut eng: Engine<usize> = Engine::new(SimTime::from_secs(horizon_s));
        for (i, &d) in delays.iter().enumerate() {
            eng.schedule_at(SimTime::from_micros(d), i);
        }
        let mut last = SimTime::ZERO;
        eng.run(&mut last, |eng, last, _| {
            assert!(eng.now() >= *last);
            assert!(eng.now() <= eng.horizon());
            *last = eng.now();
        });
    }

    /// Seed streams are reproducible and (statistically) distinct.
    #[test]
    fn rng_streams_reproducible(master in any::<u64>(), idx in 0u64..1000) {
        use rand::Rng;
        let a: Vec<u64> = {
            let mut r = SeedSplitter::new(master).stream("p", idx);
            (0..4).map(|_| r.gen()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SeedSplitter::new(master).stream("p", idx);
            (0..4).map(|_| r.gen()).collect()
        };
        prop_assert_eq!(&a, &b);
        let c: Vec<u64> = {
            let mut r = SeedSplitter::new(master).stream("p", idx + 1);
            (0..4).map(|_| r.gen()).collect()
        };
        prop_assert_ne!(a, c);
    }
}
