//! Microbenchmarks of the hot kernels: the Bayesian grid update, channel
//! sampling, the event queue, packet codecs, link-lifetime prediction and
//! geographic routing.

use std::collections::BTreeMap;

use cocoa_bench::banner;
use cocoa_georouting::graph::{RoutingNode, UnitDiskGraph};
use cocoa_georouting::route::GeoRouter;
use cocoa_localization::bayes::{radial_constraints_for_grid, BayesianLocalizer};
use cocoa_localization::grid::GridConfig;
use cocoa_multicast::mrmm::{link_lifetime, MobilityInfo};
use cocoa_net::calibration::{calibrate, CalibrationConfig, DistancePdf};
use cocoa_net::channel::RfChannel;
use cocoa_net::geometry::{Area, Point, Vec2};
use cocoa_net::packet::{NodeId, Packet, Payload};
use cocoa_net::rssi::Dbm;
use cocoa_sim::event::EventQueue;
use cocoa_sim::rng::SeedSplitter;
use cocoa_sim::time::SimTime;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::Rng;

fn benches(c: &mut Criterion) {
    banner("microbenchmarks — hot kernels");
    let channel = RfChannel::default();
    let mut cal_rng = SeedSplitter::new(1).stream("cal", 0);
    let table = calibrate(&channel, &CalibrationConfig::default(), &mut cal_rng);

    // Bayesian grid update: one beacon constraint over a 100x100 grid —
    // the generic (naive) closure path vs the radial fast path, on the
    // same table, grid and RSSI stream. The ratio of these two is the
    // headline number BENCH_grid.json reports.
    let grid_cfg = GridConfig::new(Area::square(200.0), 2.0);
    let radial = radial_constraints_for_grid(&table, &grid_cfg);
    let mut loc = BayesianLocalizer::new(grid_cfg);
    let mut rng = SeedSplitter::new(2).stream("bench", 0);
    c.bench_function("bayes_observe_beacon_100x100", |b| {
        b.iter(|| {
            let rssi = channel.sample_rssi(20.0, &mut rng);
            loc.observe_beacon(&table, Point::new(90.0, 110.0), rssi)
        })
    });

    let mut loc_radial = BayesianLocalizer::new(grid_cfg);
    let mut rng_radial = SeedSplitter::new(2).stream("bench", 0);
    c.bench_function("bayes_observe_beacon_100x100_radial", |b| {
        b.iter(|| {
            let rssi = channel.sample_rssi(20.0, &mut rng_radial);
            loc_radial.observe_beacon_radial(&radial, Point::new(90.0, 110.0), rssi)
        })
    });

    // PDF-table lookup: the dense-vector table vs the seed's
    // BTreeMap-with-±3-probing layout, rebuilt here from the same entries.
    let probing: BTreeMap<i16, DistancePdf> =
        table.entries().map(|(b, p)| (b.0, p.clone())).collect();
    let probe_lookup = |rssi: Dbm| -> Option<&DistancePdf> {
        let key = rssi.bin().0;
        if let Some(pdf) = probing.get(&key) {
            return Some(pdf);
        }
        (1..=3)
            .flat_map(|delta| [key - delta, key + delta])
            .find_map(|k| probing.get(&k))
    };
    // Sweep a fixed RSSI ramp so both hit the same mix of exact hits,
    // fallbacks and misses.
    let rssis: Vec<Dbm> = (0..64).map(|i| Dbm::new(-95.0 + f64::from(i))).collect();
    c.bench_function("pdftable_lookup_dense_64", |b| {
        b.iter(|| {
            rssis
                .iter()
                .filter(|&&r| table.lookup(black_box(r)).is_some())
                .count()
        })
    });
    c.bench_function("pdftable_lookup_probing_64", |b| {
        b.iter(|| {
            rssis
                .iter()
                .filter(|&&r| probe_lookup(black_box(r)).is_some())
                .count()
        })
    });

    c.bench_function("channel_sample_rssi", |b| {
        b.iter(|| channel.sample_rssi(black_box(35.0), &mut rng))
    });

    c.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.push(SimTime::from_micros((i * 7919) % 10_000), i);
            }
            let mut count = 0;
            while q.pop().is_some() {
                count += 1;
            }
            count
        })
    });

    let beacon = Packet::new(
        NodeId(3),
        9,
        Payload::Beacon {
            position: Point::new(1.5, 2.5),
        },
    );
    c.bench_function("packet_encode_decode_beacon", |b| {
        b.iter(|| Packet::decode(black_box(&beacon).encode()).expect("roundtrip"))
    });

    let a = MobilityInfo {
        position: Point::new(0.0, 0.0),
        velocity: Vec2::new(1.0, 0.5),
        d_rest: 80.0,
    };
    let m2 = MobilityInfo {
        position: Point::new(90.0, 10.0),
        velocity: Vec2::new(-0.5, 1.0),
        d_rest: 40.0,
    };
    c.bench_function("mrmm_link_lifetime", |b| {
        b.iter(|| link_lifetime(black_box(&a), black_box(&m2), 150.0, 120.0))
    });

    // Geographic routing over a 150-node snapshot.
    let mut geo_rng = SeedSplitter::new(3).stream("geo", 0);
    let nodes: Vec<RoutingNode> = (0..150)
        .map(|_| {
            RoutingNode::exact(Point::new(
                geo_rng.gen::<f64>() * 200.0,
                geo_rng.gen::<f64>() * 200.0,
            ))
        })
        .collect();
    let graph = UnitDiskGraph::new(nodes, 40.0);
    let router = GeoRouter::new(&graph);
    c.bench_function("geo_route_150_nodes", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % 150;
            router.route(i, 149 - i)
        })
    });
}

criterion_group!(micro, benches);
criterion_main!(micro);
