//! Regenerates paper Fig. 6 (RF-only error for different beacon periods)
//! and times an RF-only simulation.

use cocoa_bench::{banner, figure_scale, timing_scale};
use cocoa_core::experiment::fig6_rf_only;
use cocoa_core::prelude::*;
use cocoa_sim::time::SimDuration;
use criterion::{criterion_group, criterion_main, Criterion};

fn benches(c: &mut Criterion) {
    banner("Fig. 6 — RF-only localization error vs beacon period");
    let fig = fig6_rf_only(figure_scale(), &[10, 50, 100, 300]);
    println!("{}", fig.render());

    let scale = timing_scale();
    let scenario = Scenario::builder()
        .seed(scale.seed)
        .robots(scale.num_robots)
        .equipped(scale.num_robots / 2)
        .duration(scale.duration)
        .beacon_period(SimDuration::from_secs(20))
        .mode(EstimatorMode::RfOnly)
        .build();
    c.bench_function("sim_rf_only_60s_20robots", |b| b.iter(|| run(&scenario)));
}

criterion_group! {
    name = fig6;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(fig6);
