//! Regenerates paper Fig. 4 (odometry-only error growth) and times an
//! odometry-only simulation.

use cocoa_bench::{banner, figure_scale, timing_scale};
use cocoa_core::experiment::fig4_odometry;
use cocoa_core::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};

fn benches(c: &mut Criterion) {
    banner("Fig. 4 — odometry-only localization error");
    let fig = fig4_odometry(figure_scale());
    println!("{}", fig.render());

    let scale = timing_scale();
    let scenario = Scenario::builder()
        .seed(scale.seed)
        .robots(scale.num_robots)
        .equipped(0)
        .duration(scale.duration)
        .mode(EstimatorMode::OdometryOnly)
        .build();
    c.bench_function("sim_odometry_only_60s_20robots", |b| {
        b.iter(|| run(&scenario))
    });
}

criterion_group! {
    name = fig4;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(fig4);
