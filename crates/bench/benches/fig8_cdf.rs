//! Regenerates paper Fig. 8 (error CDFs at three instants of the beacon
//! period) and times the snapshot machinery.

use cocoa_bench::{banner, figure_scale, timing_scale};
use cocoa_core::experiment::fig8_cdf;
use cocoa_core::prelude::*;
use cocoa_sim::time::{SimDuration, SimTime};
use criterion::{criterion_group, criterion_main, Criterion};

fn benches(c: &mut Criterion) {
    banner("Fig. 8 — CDF of localization error at three instants");
    let fig = fig8_cdf(figure_scale());
    println!("{}", fig.render());

    let scale = timing_scale();
    let scenario = Scenario::builder()
        .seed(scale.seed)
        .robots(scale.num_robots)
        .equipped(scale.num_robots / 2)
        .duration(scale.duration)
        .beacon_period(SimDuration::from_secs(20))
        .snapshots([
            SimTime::from_secs(25),
            SimTime::from_secs(39),
            SimTime::from_secs(50),
        ])
        .mode(EstimatorMode::Cocoa)
        .build();
    c.bench_function("sim_cocoa_with_snapshots", |b| b.iter(|| run(&scenario)));
}

criterion_group! {
    name = fig8;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(fig8);
