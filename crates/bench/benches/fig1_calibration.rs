//! Regenerates paper Fig. 1 (RSSI→distance PDFs) and times the offline
//! calibration campaign.

use cocoa_bench::{banner, timing_scale};
use cocoa_core::experiment::fig1_calibration;
use cocoa_net::calibration::{calibrate, CalibrationConfig};
use cocoa_net::channel::RfChannel;
use cocoa_sim::rng::SeedSplitter;
use criterion::{criterion_group, criterion_main, Criterion};

fn benches(c: &mut Criterion) {
    banner("Fig. 1 — calibration PDFs");
    let fig = fig1_calibration(42);
    println!("{}", fig.render());

    let channel = RfChannel::default();
    c.bench_function("calibration_campaign", |b| {
        b.iter(|| {
            let mut rng = SeedSplitter::new(1).stream("cal", 0);
            calibrate(
                &channel,
                &CalibrationConfig {
                    samples_per_distance: 50,
                    ..Default::default()
                },
                &mut rng,
            )
        })
    });
    let _ = timing_scale();
}

criterion_group!(fig1, benches);
criterion_main!(fig1);
