//! Ablations of the design decisions DESIGN.md calls out: relay
//! beaconing (paper Section 6), grid resolution, SYNC service, tx power,
//! and MRMM vs plain ODMRP mesh efficiency.

use cocoa_bench::{banner, figure_scale, timing_scale};
use cocoa_core::experiment::{
    ablation_grid_resolution, ablation_packet_loss, ablation_propagation, ablation_relay_beaconing,
    ablation_rf_algorithm, ablation_sync, ablation_tx_power, render_ablation,
};
use cocoa_core::prelude::*;
use cocoa_multicast::odmrp::MeshMode;
use cocoa_sim::time::SimDuration;
use criterion::{criterion_group, criterion_main, Criterion};

fn mesh_mode_comparison(scale: cocoa_core::experiment::ExperimentScale) {
    println!("# Ablation — MRMM vs plain ODMRP (SYNC mesh efficiency)");
    println!(
        "{:<8} {:>12} {:>12} {:>10} {:>12}",
        "mode", "ctl packets", "suppressed", "delivered", "fwd effic."
    );
    for (label, mode) in [("ODMRP", MeshMode::Odmrp), ("MRMM", MeshMode::Mrmm)] {
        let mesh = cocoa_multicast::odmrp::OdmrpConfig {
            mode,
            ..Default::default()
        };
        let s = Scenario::builder()
            .seed(scale.seed)
            .robots(scale.num_robots)
            .equipped(scale.num_robots / 2)
            .duration(scale.duration)
            .mesh(mesh)
            .mode(EstimatorMode::Cocoa)
            .build();
        let m = run(&s);
        println!(
            "{:<8} {:>12} {:>12} {:>10} {:>12.2}",
            label,
            m.mesh.control_overhead(),
            m.mesh.queries_suppressed,
            m.mesh.data_delivered,
            m.mesh.forwarding_efficiency()
        );
    }
    println!();
}

fn benches(c: &mut Criterion) {
    banner("Ablations — relay beaconing / grid resolution / sync / tx power / mesh");
    let scale = figure_scale();
    println!(
        "{}",
        render_ablation(
            "Ablation — relay beaconing (Section 6 future work)",
            &ablation_relay_beaconing(scale)
        )
    );
    println!(
        "{}",
        render_ablation(
            "Ablation — grid resolution",
            &ablation_grid_resolution(scale)
        )
    );
    println!(
        "{}",
        render_ablation("Ablation — SYNC service", &ablation_sync(scale))
    );
    println!(
        "{}",
        render_ablation(
            "Ablation — beacon tx power (Section 6 future work)",
            &ablation_tx_power(scale)
        )
    );
    println!(
        "{}",
        render_ablation(
            "Ablation — RF algorithm (Section 5 baseline)",
            &ablation_rf_algorithm(scale)
        )
    );
    println!(
        "{}",
        render_ablation("Ablation — propagation model", &ablation_propagation(scale))
    );
    println!(
        "{}",
        render_ablation(
            "Ablation — packet loss robustness",
            &ablation_packet_loss(scale)
        )
    );
    mesh_mode_comparison(scale);

    let t = timing_scale();
    let relay = Scenario::builder()
        .seed(t.seed)
        .robots(t.num_robots)
        .equipped(4)
        .duration(t.duration)
        .beacon_period(SimDuration::from_secs(20))
        .relay_beaconing(true)
        .mode(EstimatorMode::Cocoa)
        .build();
    c.bench_function("sim_cocoa_relay_beaconing_60s", |b| b.iter(|| run(&relay)));
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(ablations);
