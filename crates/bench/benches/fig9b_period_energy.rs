//! Regenerates paper Fig. 9(b): team energy with vs without CoCoA's sleep
//! coordination, across beacon periods T.

use cocoa_bench::{banner, figure_scale, timing_scale};
use cocoa_core::experiment::fig9_period;
use cocoa_core::prelude::*;
use cocoa_sim::time::SimDuration;
use criterion::{criterion_group, criterion_main, Criterion};

fn benches(c: &mut Criterion) {
    banner("Fig. 9(b) — energy with vs without coordination");
    let fig = fig9_period(figure_scale(), &[10, 50, 100, 300]);
    println!("T[s]  coordinated [J]  uncoordinated [J]  savings   (paper: 2.6x–8x)");
    for p in &fig.points {
        println!(
            "{:>4}  {:>12.1}  {:>12.1}  {:.1}x",
            p.period_s,
            p.energy_coordinated_j,
            p.energy_uncoordinated_j,
            p.savings_factor()
        );
    }

    let scale = timing_scale();
    let uncoordinated = Scenario::builder()
        .seed(scale.seed)
        .robots(scale.num_robots)
        .equipped(scale.num_robots / 2)
        .duration(scale.duration)
        .beacon_period(SimDuration::from_secs(20))
        .coordination(false)
        .mode(EstimatorMode::Cocoa)
        .build();
    c.bench_function("sim_cocoa_uncoordinated_60s", |b| {
        b.iter(|| run(&uncoordinated))
    });
}

criterion_group! {
    name = fig9b;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(fig9b);
