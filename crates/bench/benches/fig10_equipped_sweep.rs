//! Regenerates paper Fig. 10: localization error vs number of robots with
//! localization devices.

use cocoa_bench::{banner, figure_scale, timing_scale};
use cocoa_core::experiment::fig10_equipped;
use cocoa_core::prelude::*;
use cocoa_sim::time::SimDuration;
use criterion::{criterion_group, criterion_main, Criterion};

fn benches(c: &mut Criterion) {
    banner("Fig. 10 — error vs number of equipped robots");
    let scale = figure_scale();
    let sweep: Vec<usize> = [5usize, 15, 25, 35]
        .into_iter()
        .map(|n| n * scale.num_robots / 50)
        .map(|n| n.max(2))
        .collect();
    let fig = fig10_equipped(scale, &sweep);
    println!("{}", fig.render());
    println!("(paper: 35 -> 5.2 m, 25 -> 5.9 m, 15 -> ~8 m, max < 12 m)\n");

    let t = timing_scale();
    let sparse = Scenario::builder()
        .seed(t.seed)
        .robots(t.num_robots)
        .equipped(3)
        .duration(t.duration)
        .beacon_period(SimDuration::from_secs(20))
        .mode(EstimatorMode::Cocoa)
        .build();
    c.bench_function("sim_cocoa_3_equipped_60s", |b| b.iter(|| run(&sparse)));
}

criterion_group! {
    name = fig10;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(fig10);
