//! Regenerates paper Fig. 9(a): CoCoA localization error across beacon
//! periods T.

use cocoa_bench::{banner, figure_scale, timing_scale};
use cocoa_core::experiment::fig9_period;
use cocoa_core::prelude::*;
use cocoa_sim::time::SimDuration;
use criterion::{criterion_group, criterion_main, Criterion};

fn benches(c: &mut Criterion) {
    banner("Fig. 9(a) — localization error vs beacon period T");
    let fig = fig9_period(figure_scale(), &[10, 50, 100, 300]);
    // Print only panel (a) here; the energy panel prints in fig9b.
    println!("T[s]  mean error [m]   (paper: ~7 @ 10, ~5 @ 50, ~6.6 @ 100)");
    for p in &fig.points {
        println!("{:>4}  {:.2}", p.period_s, p.mean_error_m);
    }

    let scale = timing_scale();
    let short = Scenario::builder()
        .seed(scale.seed)
        .robots(scale.num_robots)
        .equipped(scale.num_robots / 2)
        .duration(scale.duration)
        .beacon_period(SimDuration::from_secs(10))
        .mode(EstimatorMode::Cocoa)
        .build();
    c.bench_function("sim_cocoa_T10_60s", |b| b.iter(|| run(&short)));
}

criterion_group! {
    name = fig9a;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(fig9a);
