//! Regenerates paper Fig. 7 (CoCoA vs odometry-only vs RF-only) and times
//! a full CoCoA simulation.

use cocoa_bench::{banner, figure_scale, timing_scale};
use cocoa_core::experiment::fig7_comparison;
use cocoa_core::prelude::*;
use cocoa_sim::time::SimDuration;
use criterion::{criterion_group, criterion_main, Criterion};

fn benches(c: &mut Criterion) {
    banner("Fig. 7 — CoCoA vs odometry-only vs RF-only (T = 100 s)");
    let fig = fig7_comparison(figure_scale());
    println!("{}", fig.render());
    if let Some((cocoa, rf)) = fig.headline() {
        println!(
            "headline @ v_max = 2 m/s: CoCoA {cocoa:.1} m vs RF-only {rf:.1} m (paper: 6.5 m vs ~33 m)\n"
        );
    }

    let scale = timing_scale();
    let scenario = Scenario::builder()
        .seed(scale.seed)
        .robots(scale.num_robots)
        .equipped(scale.num_robots / 2)
        .duration(scale.duration)
        .beacon_period(SimDuration::from_secs(20))
        .mode(EstimatorMode::Cocoa)
        .build();
    c.bench_function("sim_cocoa_60s_20robots", |b| b.iter(|| run(&scenario)));
}

criterion_group! {
    name = fig7;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(fig7);
