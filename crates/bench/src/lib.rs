//! Shared plumbing for the figure-regeneration benches.
//!
//! Every bench target in this crate does two things:
//!
//! 1. **regenerates its paper figure at full scale** (50 robots, 30
//!    simulated minutes — the paper's setup) and prints the same
//!    rows/series the paper reports, and
//! 2. registers a Criterion benchmark of the underlying simulation at a
//!    downsized scale, so `cargo bench` also yields stable timing numbers.
//!
//! The `COCOA_BENCH_QUICK=1` environment variable downsizes the figure
//! regeneration too (useful on laptops / CI).

pub mod regress;

use cocoa_core::experiment::ExperimentScale;
use cocoa_sim::time::SimDuration;

/// The scale used for figure regeneration: the paper's setup, unless
/// `COCOA_BENCH_QUICK` is set.
pub fn figure_scale() -> ExperimentScale {
    if std::env::var_os("COCOA_BENCH_QUICK").is_some() {
        ExperimentScale {
            seed: 42,
            duration: SimDuration::from_secs(300),
            num_robots: 30,
        }
    } else {
        ExperimentScale::default()
    }
}

/// The scale used for Criterion timing: small enough for tens of
/// iterations.
pub fn timing_scale() -> ExperimentScale {
    ExperimentScale {
        seed: 42,
        duration: SimDuration::from_secs(60),
        num_robots: 20,
    }
}

/// Prints a figure banner so the bench output doubles as the experiment
/// record.
pub fn banner(figure: &str) {
    println!("\n==================================================================");
    println!("== Regenerating {figure} (set COCOA_BENCH_QUICK=1 to downsize) ==");
    println!("==================================================================");
}
