//! Performance smoke benchmark: times the localization hot kernels and a
//! quick-scale Figure 7 run, prints a summary, and writes the numbers to
//! `BENCH_grid.json` for CI to archive.
//!
//! ```sh
//! cargo run --release -p cocoa-bench --bin perf
//! ```
//!
//! Unlike the Criterion microbenchmarks this is a single fast pass (a few
//! seconds end to end), intended as a regression tripwire: the JSON records
//! ops/s for the naive and radial Bayesian grid updates (and their ratio),
//! the dense and probing PDF-table lookups, and the wall time of the
//! quick-scale Figure 7 comparison.
//!
//! The tripwire is armed by the regression gate
//! (see [`cocoa_bench::regress`]):
//!
//! - `perf --record` additionally merges the fresh BENCH files into the
//!   `bench/history/` ring (pruned to the last 8 entries);
//! - `perf --check` skips the benchmarks and compares the BENCH files on
//!   disk against the median of the history ring, exiting non-zero if any
//!   gated metric regressed beyond its per-metric tolerance;
//! - `--history DIR` overrides the history directory for both.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use cocoa_bench::regress;

use cocoa_core::experiment::{
    ablation_estimator, fig7_comparison, fig9_scenarios, ExperimentScale,
};
use cocoa_core::metrics::RunMetrics;
use cocoa_core::runner::{run, WarmArtifacts};
use cocoa_core::serve::{client, ServeConfig, Server};
use cocoa_localization::adaptive::AdaptiveGrid;
use cocoa_localization::bayes::{radial_constraints_for_grid, BayesianLocalizer};
use cocoa_localization::grid::{GridConfig, PositionGrid};
use cocoa_localization::kernel::{GridKernel, GridPrecision};
use cocoa_net::calibration::{calibrate, CalibrationConfig, DistancePdf};
use cocoa_net::channel::RfChannel;
use cocoa_net::geometry::{Area, Point};
use cocoa_net::rssi::Dbm;
use cocoa_sim::rng::SeedSplitter;
use cocoa_sim::telemetry::Telemetry;
use cocoa_sim::time::SimDuration;

/// Runs `f` repeatedly until at least ~200 ms have elapsed (after one
/// warm-up call) and returns ops per second.
fn ops_per_sec(mut f: impl FnMut()) -> f64 {
    f();
    let mut iters = 1u64;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        let dt = t0.elapsed().as_secs_f64();
        if dt >= 0.2 {
            return iters as f64 / dt;
        }
        iters = (iters * 4).max((0.25 / dt.max(1e-9)) as u64);
    }
}

fn fmt_ops(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.2} Mops/s", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1} kops/s", v / 1e3)
    } else {
        format!("{v:.1} ops/s")
    }
}

/// Compares the BENCH files on disk against the history ring and prints
/// the verdict table. Returns failure if any gated metric regressed.
fn check_only(history_dir: &Path) -> ExitCode {
    let current = match regress::load_current(Path::new(".")) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let history = match regress::load_history(history_dir) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if history.is_empty() {
        eprintln!(
            "error: no history under {} — run `perf --record` first",
            history_dir.display()
        );
        return ExitCode::FAILURE;
    }
    let report = regress::check(&current, &history);
    print!("{}", report.render());
    if report.passed() {
        println!("perf check: OK");
        ExitCode::SUCCESS
    } else {
        eprintln!("perf check: REGRESSION detected");
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let mut do_check = false;
    let mut do_record = false;
    let mut history_dir = PathBuf::from("bench/history");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => do_check = true,
            "--record" => do_record = true,
            "--history" => match args.next() {
                Some(dir) => history_dir = PathBuf::from(dir),
                None => {
                    eprintln!("error: --history needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("error: unknown argument {other:?}");
                eprintln!("usage: perf [--record] [--check] [--history DIR]");
                return ExitCode::FAILURE;
            }
        }
    }
    if do_check {
        return check_only(&history_dir);
    }

    let channel = RfChannel::default();
    let mut cal_rng = SeedSplitter::new(1).stream("cal", 0);
    let table = calibrate(&channel, &CalibrationConfig::default(), &mut cal_rng);
    let grid_cfg = GridConfig::new(Area::square(200.0), 2.0);
    let radial = radial_constraints_for_grid(&table, &grid_cfg);
    let beacon = Point::new(90.0, 110.0);

    // Bayesian grid update, 100x100 cells: generic closure path vs radial
    // fast path, fed the same RSSI stream.
    let mut loc = BayesianLocalizer::new(grid_cfg);
    let mut rng = SeedSplitter::new(2).stream("bench", 0);
    let grid_naive = ops_per_sec(|| {
        let rssi = channel.sample_rssi(20.0, &mut rng);
        loc.observe_beacon(&table, beacon, rssi);
    });
    let mut loc_radial = BayesianLocalizer::new(grid_cfg);
    let mut rng_radial = SeedSplitter::new(2).stream("bench", 0);
    let grid_radial = ops_per_sec(|| {
        let rssi = channel.sample_rssi(20.0, &mut rng_radial);
        loc_radial.observe_beacon_radial(&radial, beacon, rssi);
    });
    let speedup = grid_radial / grid_naive;

    // Kernel variants, isolated at the grid level (100×100 cells, one
    // representative floored profile, beacon positions rotated so the work
    // is not degenerate). `scalar` is the pre-kernel reference loop.
    let profile = radial
        .lookup(Dbm::new(-70.0))
        .expect("calibrated bin")
        .clone();
    let beacons = [
        Point::new(90.0, 110.0),
        Point::new(120.0, 80.0),
        Point::new(60.0, 60.0),
        Point::new(140.0, 150.0),
    ];
    let bench_kernel = |kern: GridKernel, precision: GridPrecision| {
        let mut g = PositionGrid::new(grid_cfg);
        let mut i = 0usize;
        ops_per_sec(|| {
            g.apply_radial_constraint_with(beacons[i % 4], &profile, kern, precision);
            i += 1;
            if i.is_multiple_of(16) {
                g.reset_uniform();
            }
        })
    };
    let kernel_scalar = bench_kernel(GridKernel::Scalar, GridPrecision::F64);
    let kernel_simd = bench_kernel(GridKernel::Simd, GridPrecision::F64);
    let kernel_f32 = bench_kernel(GridKernel::Simd, GridPrecision::F32);
    let simd_speedup = kernel_simd / kernel_scalar;
    let f32_speedup = kernel_f32 / kernel_scalar;

    // Window-level: 4 beacons applied sequentially (one posterior
    // load/store + renormalize each) vs one fused batch.
    let constraints: Vec<(Point, &cocoa_net::calibration::RadialProfile)> =
        beacons.iter().map(|&b| (b, &profile)).collect();
    let mut g_seq = PositionGrid::new(grid_cfg);
    let window_sequential = ops_per_sec(|| {
        g_seq.reset_uniform();
        for &b in &beacons {
            g_seq.apply_radial_constraint_with(b, &profile, GridKernel::Simd, GridPrecision::F64);
        }
    });
    let mut g_fused = PositionGrid::new(grid_cfg);
    let window_fused = ops_per_sec(|| {
        g_fused.reset_uniform();
        g_fused.apply_fused_radial_constraints(&constraints, GridPrecision::F64);
    });
    let fused_speedup = window_fused / window_sequential;

    // Adaptive coarse-to-fine: same 4-beacon window, counting evaluated
    // cells. The dense window touches 4 × 10⁴ cells; the adaptive grid
    // evaluates coarse tiles once and fine cells only where mass lives.
    let mut g_ad = AdaptiveGrid::new(grid_cfg, 4, 2.0);
    let mut adaptive_touched = 0u64;
    let mut adaptive_windows = 0u64;
    let window_adaptive = ops_per_sec(|| {
        g_ad.reset_uniform();
        for &b in &beacons {
            let (_, op) = g_ad.apply_radial_constraint(b, &profile);
            adaptive_touched += op.cells_touched;
        }
        adaptive_windows += 1;
    });
    let dense_cells_per_window = 4 * PositionGrid::new(grid_cfg).num_cells();
    let adaptive_cells_per_window = adaptive_touched as f64 / adaptive_windows as f64;
    let cells_ratio = dense_cells_per_window as f64 / adaptive_cells_per_window;
    // Equal-accuracy guard: the adaptive estimate must stay within one
    // grid cell (2 m) of the dense one on this window — the dense grid's
    // own quantization scale.
    let adaptive_estimate_delta = {
        let mut dense = PositionGrid::new(grid_cfg);
        let mut adaptive = AdaptiveGrid::new(grid_cfg, 4, 2.0);
        for &b in &beacons {
            dense.apply_radial_constraint(b, &profile);
            adaptive.apply_radial_constraint(b, &profile);
        }
        dense.mean().distance_to(adaptive.mean())
    };
    assert!(
        adaptive_estimate_delta < grid_cfg.resolution_m,
        "adaptive estimate drifted {adaptive_estimate_delta:.2} m from dense"
    );

    // PDF-table lookup over a 64-value RSSI ramp: dense vector vs the
    // seed's BTreeMap-with-probing layout rebuilt from the same entries.
    let rssis: Vec<Dbm> = (0..64).map(|i| Dbm::new(-95.0 + f64::from(i))).collect();
    let lookup_dense = ops_per_sec(|| {
        let hits = rssis.iter().filter(|&&r| table.lookup(r).is_some()).count();
        assert!(hits > 0);
    }) * rssis.len() as f64;
    let probing: BTreeMap<i16, DistancePdf> =
        table.entries().map(|(b, p)| (b.0, p.clone())).collect();
    let probe_lookup = |rssi: Dbm| -> Option<&DistancePdf> {
        let key = rssi.bin().0;
        probing.get(&key).or_else(|| {
            (1..=3)
                .flat_map(|delta| [key - delta, key + delta])
                .find_map(|k| probing.get(&k))
        })
    };
    let lookup_probing = ops_per_sec(|| {
        let hits = rssis.iter().filter(|&&r| probe_lookup(r).is_some()).count();
        assert!(hits > 0);
    }) * rssis.len() as f64;

    // Quick-scale Figure 7 (CoCoA vs RF-only vs odometry comparison) as an
    // end-to-end smoke run through the bounded sweep executor.
    let t0 = Instant::now();
    let fig7 = fig7_comparison(ExperimentScale::quick());
    let fig7_secs = t0.elapsed().as_secs_f64();
    let fig7_headline = fig7.headline();

    // Quick-scale estimator-backend ablation: the summary rows feed the
    // regression gate, so a change that silently degrades one RF backend
    // (or stops exercising the outlier gate under faults) trips `--check`.
    let t0 = Instant::now();
    let est_rows = ablation_estimator(ExperimentScale::quick());
    let est_secs = t0.elapsed().as_secs_f64();
    let est = |algo: &str, faults: &str| {
        est_rows
            .iter()
            .find(|r| r.algorithm.to_string() == algo && r.faults == faults)
            .expect("ablation_estimator rows are fixed")
    };
    let est_bayes = est("bayes", "none");
    let est_lateration = est("multilateration", "none");
    let est_ekf = est("ekf", "none");
    let est_ekf_chaos = est("ekf", "chaos");

    // Warm-start sweep: the default beacon-period family (Fig. 9, paper
    // periods 10/50/100/300 s) executed point by point, cold vs forked
    // from a shared time-zero snapshot. Both paths run serially so the
    // numbers measure the work saved per point (calibration, radial
    // table, team setup), independent of the machine's core count. The
    // sweep uses a small team at full mission length — the setup-bound
    // shard shape that distributed sweep workers run — because that is
    // the regime warm-starting targets; per-run setup is fixed, so its
    // share (and the speedup) shrinks as team size grows.
    let snap_scale = ExperimentScale {
        seed: 42,
        duration: SimDuration::from_secs(400),
        num_robots: 4,
    };
    let periods_s = [10u64, 50, 100, 300];
    let scenarios = fig9_scenarios(snap_scale, &periods_s);
    let t0 = Instant::now();
    let cold: Vec<RunMetrics> = scenarios.iter().map(run).collect();
    let snap_cold_secs = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let artifacts = WarmArtifacts::build(&scenarios[0]);
    let snap_setup_secs = t0.elapsed().as_secs_f64();
    let warm: Vec<RunMetrics> = scenarios
        .iter()
        .map(|s| {
            artifacts
                .fork(s, Telemetry::off())
                .expect("fig9 points are fork-compatible")
                .finish()
                .0
        })
        .collect();
    let snap_warm_secs = t0.elapsed().as_secs_f64();
    assert_eq!(cold, warm, "warm forks must be bit-identical to cold runs");
    let snap_speedup = snap_cold_secs / snap_warm_secs;
    let snapshot_bytes = artifacts.snapshot_bytes().len();

    // Serve round trip: an in-process `cocoa-serve` server on an
    // ephemeral port, timed through the bundled HTTP client (the exact
    // `--submit` code path). Cold executes the run; an identical
    // resubmission must come from the results cache with a byte-identical
    // body; a same-family spec at a different beacon period forks from
    // the warm-artifact cache instead of cold-starting. The ≥5× floor on
    // the cold/cached ratio is deliberately loose — a cache hit skips the
    // whole simulation, so anything near the floor means the cache broke.
    let serve_spec = "{\"seed\": 42, \"robots\": 10, \"equipped\": 5, \
                      \"duration_s\": 300, \"period_s\": 100}";
    let serve_warm_spec = "{\"seed\": 42, \"robots\": 10, \"equipped\": 5, \
                           \"duration_s\": 300, \"period_s\": 50}";
    let server = Server::start(ServeConfig {
        quiet: true,
        ..ServeConfig::default()
    })
    .expect("serve bench server starts");
    let serve_addr = server.local_addr().to_string();
    let t0 = Instant::now();
    let serve_cold = client::submit(&serve_addr, serve_spec).expect("cold submit");
    let serve_cold_secs = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let serve_cached = client::submit(&serve_addr, serve_spec).expect("cached submit");
    let serve_cached_secs = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let serve_warm = client::submit(&serve_addr, serve_warm_spec).expect("warm submit");
    let serve_warm_secs = t0.elapsed().as_secs_f64();
    assert_eq!(serve_cold.status, 200, "{}", serve_cold.body_str());
    assert_eq!(serve_cold.cache_status(), Some("miss"));
    assert_eq!(serve_cached.cache_status(), Some("hit"));
    assert_eq!(serve_warm.status, 200, "{}", serve_warm.body_str());
    let serve_warm_forks = server
        .counters()
        .into_iter()
        .find(|(name, _)| *name == "serve.warm_forks")
        .map_or(0, |(_, v)| v);
    assert_eq!(serve_warm_forks, 1, "warm spec must fork cached artifacts");
    let serve_bit_identical = serve_cold.body == serve_cached.body;
    assert!(serve_bit_identical, "cached body must be byte-identical");
    let serve_cache_speedup = serve_cold_secs / serve_cached_secs.max(1e-9);
    assert!(
        serve_cache_speedup >= 5.0,
        "cache hit only {serve_cache_speedup:.1}x faster than cold \
         ({serve_cold_secs:.4} s vs {serve_cached_secs:.4} s)"
    );
    drop(server);

    println!("grid update (naive):   {}", fmt_ops(grid_naive));
    println!(
        "grid update (radial):  {}  ({speedup:.1}x)",
        fmt_ops(grid_radial)
    );
    println!("grid kernel (scalar):  {}", fmt_ops(kernel_scalar));
    println!(
        "grid kernel (simd):    {}  ({simd_speedup:.2}x)",
        fmt_ops(kernel_simd)
    );
    println!(
        "grid kernel (f32):     {}  ({f32_speedup:.2}x)",
        fmt_ops(kernel_f32)
    );
    println!(
        "grid window (fused):   {} vs sequential {}  ({fused_speedup:.2}x)",
        fmt_ops(window_fused),
        fmt_ops(window_sequential)
    );
    println!(
        "grid window (adaptive): {}  ({adaptive_cells_per_window:.0} cells vs {dense_cells_per_window} dense, {cells_ratio:.1}x fewer, est delta {adaptive_estimate_delta:.3} m)",
        fmt_ops(window_adaptive)
    );
    println!("pdf lookup (dense):    {}", fmt_ops(lookup_dense));
    println!("pdf lookup (probing):  {}", fmt_ops(lookup_probing));
    println!("fig7 quick scale:      {fig7_secs:.2} s");
    if let Some((cocoa, rf)) = fig7_headline {
        println!("fig7 headline @ 2 m/s: CoCoA {cocoa:.1} m vs RF-only {rf:.1} m");
    }
    println!(
        "estimator ablation:    bayes {:.2} m / wls {:.2} m / ekf {:.2} m \
         (chaos {:.2} m, {} gated) in {est_secs:.2} s",
        est_bayes.mean_error_m,
        est_lateration.mean_error_m,
        est_ekf.mean_error_m,
        est_ekf_chaos.mean_error_m,
        est_ekf_chaos.outliers_rejected,
    );
    println!(
        "warm-start sweep:      cold {snap_cold_secs:.2} s, warm {snap_warm_secs:.2} s \
         ({snap_speedup:.2}x, setup {snap_setup_secs:.3} s, snapshot {snapshot_bytes} B)"
    );
    println!(
        "serve round trip:      cold {serve_cold_secs:.3} s, cached {serve_cached_secs:.4} s \
         ({serve_cache_speedup:.0}x), warm fork {serve_warm_secs:.3} s"
    );

    let json = format!(
        "{{\n  \"grid_update_naive_ops_per_sec\": {grid_naive:.1},\n  \
         \"grid_update_radial_ops_per_sec\": {grid_radial:.1},\n  \
         \"grid_update_radial_speedup\": {speedup:.2},\n  \
         \"grid_kernel_scalar_ops_per_sec\": {kernel_scalar:.1},\n  \
         \"grid_kernel_simd_ops_per_sec\": {kernel_simd:.1},\n  \
         \"grid_update_simd_speedup\": {simd_speedup:.2},\n  \
         \"grid_kernel_f32_ops_per_sec\": {kernel_f32:.1},\n  \
         \"grid_update_f32_speedup\": {f32_speedup:.2},\n  \
         \"grid_window_sequential_ops_per_sec\": {window_sequential:.1},\n  \
         \"grid_window_fused_ops_per_sec\": {window_fused:.1},\n  \
         \"grid_update_fused_speedup\": {fused_speedup:.2},\n  \
         \"grid_window_adaptive_ops_per_sec\": {window_adaptive:.1},\n  \
         \"grid_adaptive_cells_per_window\": {adaptive_cells_per_window:.0},\n  \
         \"grid_dense_cells_per_window\": {dense_cells_per_window},\n  \
         \"grid_adaptive_cells_ratio\": {cells_ratio:.2},\n  \
         \"grid_adaptive_estimate_delta_m\": {adaptive_estimate_delta:.4},\n  \
         \"pdf_lookup_dense_ops_per_sec\": {lookup_dense:.1},\n  \
         \"pdf_lookup_probing_ops_per_sec\": {lookup_probing:.1},\n  \
         \"fig7_quick_wall_secs\": {fig7_secs:.3}\n}}\n"
    );
    std::fs::write("BENCH_grid.json", &json).expect("write BENCH_grid.json");
    println!("wrote BENCH_grid.json");

    let snap_json = format!(
        "{{\n  \"sweep_points\": {},\n  \
         \"duration_secs\": {},\n  \
         \"num_robots\": {},\n  \
         \"snapshot_bytes\": {snapshot_bytes},\n  \
         \"setup_wall_secs\": {snap_setup_secs:.3},\n  \
         \"cold_wall_secs\": {snap_cold_secs:.3},\n  \
         \"warm_wall_secs\": {snap_warm_secs:.3},\n  \
         \"warm_speedup\": {snap_speedup:.2},\n  \
         \"bit_identical\": true\n}}\n",
        scenarios.len(),
        snap_scale.duration.as_secs_f64(),
        snap_scale.num_robots,
    );
    std::fs::write("BENCH_snapshot.json", &snap_json).expect("write BENCH_snapshot.json");
    println!("wrote BENCH_snapshot.json");

    let est_json = format!(
        "{{\n  \"estimator_bayes_error_m\": {:.4},\n  \
         \"estimator_multilateration_error_m\": {:.4},\n  \
         \"estimator_ekf_error_m\": {:.4},\n  \
         \"estimator_ekf_chaos_error_m\": {:.4},\n  \
         \"estimator_ekf_chaos_outliers_rejected\": {},\n  \
         \"estimator_quick_wall_secs\": {est_secs:.3}\n}}\n",
        est_bayes.mean_error_m,
        est_lateration.mean_error_m,
        est_ekf.mean_error_m,
        est_ekf_chaos.mean_error_m,
        est_ekf_chaos.outliers_rejected,
    );
    std::fs::write("BENCH_estimator.json", &est_json).expect("write BENCH_estimator.json");
    println!("wrote BENCH_estimator.json");

    let serve_json = format!(
        "{{\n  \"serve_cold_wall_secs\": {serve_cold_secs:.4},\n  \
         \"serve_cached_wall_secs\": {serve_cached_secs:.5},\n  \
         \"serve_warm_wall_secs\": {serve_warm_secs:.4},\n  \
         \"serve_cache_speedup\": {serve_cache_speedup:.1},\n  \
         \"serve_bit_identical\": {serve_bit_identical}\n}}\n"
    );
    std::fs::write("BENCH_serve.json", &serve_json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");

    if do_record {
        let current = match regress::load_current(Path::new(".")) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        match regress::record(&history_dir, &current) {
            Ok(name) => println!("recorded {}", history_dir.join(name).display()),
            Err(e) => {
                eprintln!("error: cannot record history: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
