//! Regenerates every table and figure of the paper at full scale
//! (50 robots, 30 simulated minutes) and prints the rows/series the paper
//! reports. This is the one-shot entry point behind `EXPERIMENTS.md`.
//!
//! ```sh
//! cargo run --release -p cocoa-bench --bin figures
//! ```
//!
//! Pass figure names (`fig1 fig4 fig6 fig7 fig8 fig9 fig10 ablations
//! multicast estimator geo`) to run a subset.

use cocoa_bench::figure_scale;
use cocoa_core::experiment::{
    ablation_estimator, ablation_grid_resolution, ablation_multicast, ablation_packet_loss,
    ablation_propagation, ablation_relay_beaconing, ablation_rf_algorithm, ablation_sync,
    ablation_tx_power, fig10_equipped, fig1_calibration, fig4_odometry, fig6_rf_only,
    fig7_comparison, fig8_cdf, fig9_period, render_ablation, render_estimator_ablation,
    render_multicast_ablation,
};
use cocoa_core::prelude::*;
use cocoa_georouting::prelude::*;
use cocoa_sim::rng::SeedSplitter;
use rand::Rng;

fn geo_routing_experiment() {
    println!("# Extension — geographic routing over CoCoA coordinates (Section 6)");
    let scale = figure_scale();
    let scenario = Scenario::builder()
        .seed(scale.seed)
        .robots(scale.num_robots)
        .equipped(scale.num_robots / 2)
        .duration(scale.duration)
        .mode(EstimatorMode::Cocoa)
        .build();
    let m = run(&scenario);
    let exact: Vec<RoutingNode> = m
        .final_states
        .iter()
        .map(|r| RoutingNode::exact(r.true_position))
        .collect();
    let cocoa: Vec<RoutingNode> = m
        .final_states
        .iter()
        .map(|r| RoutingNode {
            true_position: r.true_position,
            believed_position: r.estimate,
        })
        .collect();
    let ge = UnitDiskGraph::new(exact, 50.0);
    let gc = UnitDiskGraph::new(cocoa, 50.0);
    let mut rng = SeedSplitter::new(scale.seed).stream("pairs", 0);
    let n = ge.len();
    let pairs: Vec<(usize, usize)> = (0..400)
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
        .collect();
    let se = delivery_experiment(&ge, &pairs);
    let sc = delivery_experiment(&gc, &pairs);
    println!(
        "coordinates  delivery  mean hops  stretch  face fraction\n\
         exact        {:>7.1}%  {:>9.2}  {:>7.2}  {:>12.1}%\n\
         CoCoA        {:>7.1}%  {:>9.2}  {:>7.2}  {:>12.1}%\n",
        se.delivery_rate() * 100.0,
        se.mean_hops,
        se.mean_stretch,
        se.face_fraction * 100.0,
        sc.delivery_rate() * 100.0,
        sc.mean_hops,
        sc.mean_stretch,
        sc.face_fraction * 100.0,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name);
    let scale = figure_scale();
    println!(
        "scale: {} robots, {} simulated, seed {}\n",
        scale.num_robots, scale.duration, scale.seed
    );
    let t0 = std::time::Instant::now();
    if want("fig1") {
        println!("{}", fig1_calibration(scale.seed).render());
    }
    if want("fig4") {
        println!("{}", fig4_odometry(scale).render());
    }
    if want("fig6") {
        println!("{}", fig6_rf_only(scale, &[10, 50, 100, 300]).render());
    }
    if want("fig7") {
        let fig = fig7_comparison(scale);
        println!("{}", fig.render());
        if let Some((cocoa, rf)) = fig.headline() {
            println!(
                "headline @ 2 m/s: CoCoA {cocoa:.1} m vs RF-only {rf:.1} m (paper: 6.5 vs ~33)\n"
            );
        }
    }
    if want("fig8") {
        println!("{}", fig8_cdf(scale).render());
    }
    if want("fig9") {
        println!("{}", fig9_period(scale, &[10, 50, 100, 300]).render());
    }
    if want("fig10") {
        let sweep: Vec<usize> = [5usize, 15, 25, 35]
            .into_iter()
            .map(|n| (n * scale.num_robots / 50).max(2))
            .collect();
        println!("{}", fig10_equipped(scale, &sweep).render());
    }
    if want("ablations") {
        println!(
            "{}",
            render_ablation(
                "Ablation — relay beaconing",
                &ablation_relay_beaconing(scale)
            )
        );
        println!(
            "{}",
            render_ablation(
                "Ablation — grid resolution",
                &ablation_grid_resolution(scale)
            )
        );
        println!(
            "{}",
            render_ablation("Ablation — SYNC service", &ablation_sync(scale))
        );
        println!(
            "{}",
            render_ablation("Ablation — beacon tx power", &ablation_tx_power(scale))
        );
        println!(
            "{}",
            render_ablation(
                "Ablation — RF algorithm (Section 5 baseline)",
                &ablation_rf_algorithm(scale)
            )
        );
        println!(
            "{}",
            render_ablation("Ablation — propagation model", &ablation_propagation(scale))
        );
        println!(
            "{}",
            render_ablation(
                "Ablation — packet loss robustness",
                &ablation_packet_loss(scale)
            )
        );
    }
    if want("multicast") {
        println!("{}", render_multicast_ablation(&ablation_multicast(scale)));
    }
    if want("estimator") {
        println!("{}", render_estimator_ablation(&ablation_estimator(scale)));
    }
    if want("geo") {
        geo_routing_experiment();
    }
    eprintln!("total wall time: {:.1} s", t0.elapsed().as_secs_f64());
}
