//! Noise-aware performance-regression gate over BENCH snapshots.
//!
//! The `perf` binary writes flat-JSON metric snapshots (`BENCH_grid.json`,
//! `BENCH_snapshot.json`). This module turns a ring of such snapshots under
//! `bench/history/` into a regression gate:
//!
//! - `perf --record` merges the freshly written BENCH files into one history
//!   entry and prunes the ring to the most recent [`HISTORY_KEEP`] entries;
//! - `perf --check` compares the current BENCH files against the **median**
//!   of the history ring, metric by metric, and fails (non-zero exit) if any
//!   gated metric regresses beyond its per-metric relative tolerance.
//!
//! The median-of-history baseline plus generous per-metric tolerances make
//! the gate robust to the run-to-run noise of shared CI runners: a single
//! slow historic run cannot drag the baseline, and throughput metrics only
//! fail on large, sustained drops. Deterministic metrics (cell counts,
//! accuracy deltas, the `bit_identical` invariant) get tight tolerances —
//! they should not move at all without a deliberate change and a re-record.

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

use cocoa_core::tracefile::{parse_flat_object, JsonValue};

/// How many history entries the ring keeps on `--record`.
pub const HISTORY_KEEP: usize = 8;

/// Which way a metric is allowed to move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Larger is better; regressions are drops below the baseline.
    HigherIsBetter,
    /// Smaller is better; regressions are rises above the baseline.
    LowerIsBetter,
    /// Tracked and reported but never gating. Used for metrics whose
    /// expected value is known to be unflattering until a planned fix
    /// lands.
    Informational,
}

/// One gated metric: its JSON key, direction, and relative tolerance.
///
/// The tolerance is relative to the baseline: a `HigherIsBetter` metric
/// fails when `current < baseline * (1 - tolerance)`, a `LowerIsBetter`
/// one when `current > baseline * (1 + tolerance)`.
#[derive(Debug, Clone, Copy)]
pub struct MetricSpec {
    /// JSON key in the BENCH snapshot.
    pub key: &'static str,
    /// Which way the metric may move.
    pub direction: Direction,
    /// Relative tolerance before a move counts as a regression.
    pub tolerance: f64,
}

use Direction::{HigherIsBetter, Informational, LowerIsBetter};

/// The gate's metric table.
///
/// Throughput (`*_ops_per_sec`) and wall-clock metrics run on shared,
/// noisy machines and get wide tolerances — the gate is for catching
/// "the kernel got 2× slower", not 10% jitter. Deterministic shape
/// metrics (cell counts, accuracy deltas, `bit_identical`) are tight.
pub const SPECS: &[MetricSpec] = &[
    // --- BENCH_grid.json: throughput ---
    spec("grid_update_naive_ops_per_sec", HigherIsBetter, 0.5),
    spec("grid_update_radial_ops_per_sec", HigherIsBetter, 0.5),
    spec("grid_kernel_scalar_ops_per_sec", HigherIsBetter, 0.5),
    spec("grid_kernel_simd_ops_per_sec", HigherIsBetter, 0.5),
    spec("grid_kernel_f32_ops_per_sec", HigherIsBetter, 0.5),
    spec("grid_window_sequential_ops_per_sec", HigherIsBetter, 0.5),
    spec("grid_window_fused_ops_per_sec", HigherIsBetter, 0.5),
    spec("grid_window_adaptive_ops_per_sec", HigherIsBetter, 0.5),
    spec("pdf_lookup_dense_ops_per_sec", HigherIsBetter, 0.5),
    spec("pdf_lookup_probing_ops_per_sec", HigherIsBetter, 0.5),
    // --- BENCH_grid.json: relative speedups (ratios of two timings taken
    // back to back on the same machine, so noise partially cancels) ---
    spec("grid_update_radial_speedup", HigherIsBetter, 0.35),
    spec("grid_update_simd_speedup", HigherIsBetter, 0.35),
    spec("grid_update_fused_speedup", HigherIsBetter, 0.35),
    // Informational: the f32 kernel currently loses to scalar f64 (~0.95×)
    // because the gather/scatter at the tile edges is still scalar. The
    // planned fix is the masked-gather vectorization of the PDF lookup
    // (ROADMAP item 5); until that lands this metric documents the status
    // quo instead of gating on it.
    spec("grid_update_f32_speedup", Informational, 0.0),
    // --- BENCH_grid.json: deterministic shape/accuracy ---
    spec("grid_adaptive_cells_per_window", LowerIsBetter, 0.05),
    spec("grid_dense_cells_per_window", LowerIsBetter, 0.01),
    spec("grid_adaptive_cells_ratio", HigherIsBetter, 0.05),
    spec("grid_adaptive_estimate_delta_m", LowerIsBetter, 0.05),
    spec("fig7_quick_wall_secs", LowerIsBetter, 1.0),
    // --- BENCH_estimator.json: quick-scale estimator-backend ablation.
    // The errors are deterministic for a fixed seed, but deliberate
    // algorithm tuning legitimately moves them — tolerances are loose so
    // only a substantial accuracy loss gates. The chaos row is
    // informational: fault interleavings shift with unrelated scheduling
    // changes.
    spec("estimator_bayes_error_m", LowerIsBetter, 0.15),
    spec("estimator_multilateration_error_m", LowerIsBetter, 0.3),
    spec("estimator_ekf_error_m", LowerIsBetter, 0.3),
    spec("estimator_ekf_chaos_error_m", Informational, 0.0),
    spec("estimator_ekf_chaos_outliers_rejected", Informational, 0.0),
    spec("estimator_quick_wall_secs", LowerIsBetter, 1.0),
    // --- BENCH_snapshot.json ---
    spec("snapshot_bytes", LowerIsBetter, 0.02),
    spec("cold_wall_secs", LowerIsBetter, 1.0),
    spec("warm_wall_secs", LowerIsBetter, 1.0),
    spec("warm_speedup", HigherIsBetter, 0.35),
    // Booleans map to 1.0/0.0; zero tolerance means any `false` against a
    // `true` baseline fails — bit-identical warm resume is an invariant,
    // not a performance number.
    spec("bit_identical", HigherIsBetter, 0.0),
    // --- BENCH_serve.json: the cocoa-serve round trip. The cold leg is
    // one full run plus HTTP overhead; the cached leg must be served
    // straight from the results cache, so the cold/cached ratio collapses
    // toward 1 the moment the cache stops working — that ratio is the
    // gate (perf itself also asserts an absolute ≥5× floor). The cached
    // wall time alone is sub-millisecond scheduler noise, so it is
    // tracked but informational.
    spec("serve_cold_wall_secs", LowerIsBetter, 1.0),
    spec("serve_cached_wall_secs", Informational, 0.0),
    spec("serve_warm_wall_secs", LowerIsBetter, 1.0),
    spec("serve_cache_speedup", HigherIsBetter, 0.8),
    // Byte-identical cold vs cached bodies is an invariant, like
    // `bit_identical` above.
    spec("serve_bit_identical", HigherIsBetter, 0.0),
];

const fn spec(key: &'static str, direction: Direction, tolerance: f64) -> MetricSpec {
    MetricSpec {
        key,
        direction,
        tolerance,
    }
}

/// A flat metric map: key → numeric value (booleans as 1.0/0.0).
pub type Metrics = BTreeMap<String, f64>;

/// Parses one BENCH snapshot (flat JSON, possibly pretty-printed) into a
/// metric map. Booleans become 1.0/0.0; strings and nulls are skipped.
///
/// # Errors
///
/// Returns a human-readable message on malformed JSON.
pub fn parse_metrics(text: &str) -> Result<Metrics, String> {
    let obj = parse_flat_object(text)?;
    let mut out = Metrics::new();
    for (key, value) in obj {
        let num = match value {
            JsonValue::Num(n) => n,
            JsonValue::Bool(b) => {
                if b {
                    1.0
                } else {
                    0.0
                }
            }
            JsonValue::Str(_) | JsonValue::Null => continue,
        };
        out.insert(key, num);
    }
    Ok(out)
}

/// Reads and merges the current BENCH files from `dir`.
///
/// Missing files are skipped (a partial bench run still checks what it
/// produced); an empty result is an error so `--check` cannot silently
/// pass with nothing to compare.
///
/// # Errors
///
/// Fails when no BENCH file could be read, or any present one is
/// malformed.
pub fn load_current(dir: &Path) -> Result<Metrics, String> {
    let mut merged = Metrics::new();
    let mut found = false;
    for name in [
        "BENCH_grid.json",
        "BENCH_snapshot.json",
        "BENCH_estimator.json",
        "BENCH_serve.json",
    ] {
        let path = dir.join(name);
        let Ok(text) = fs::read_to_string(&path) else {
            continue;
        };
        found = true;
        let metrics = parse_metrics(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        merged.extend(metrics);
    }
    if !found {
        return Err(format!(
            "no BENCH_grid.json / BENCH_snapshot.json under {} — run `perf` first",
            dir.display()
        ));
    }
    Ok(merged)
}

/// Loads every `*.json` history entry under `dir`, sorted by file name.
///
/// A missing directory is an empty history (fresh repo), not an error.
///
/// # Errors
///
/// Fails on unreadable or malformed entries — a corrupt baseline should
/// be fixed or deleted, not silently ignored.
pub fn load_history(dir: &Path) -> Result<Vec<Metrics>, String> {
    let mut names: Vec<String> = match fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.ends_with(".json"))
            .collect(),
        Err(_) => return Ok(Vec::new()),
    };
    names.sort();
    let mut out = Vec::new();
    for name in names {
        let path = dir.join(&name);
        let text = fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        out.push(parse_metrics(&text).map_err(|e| format!("{}: {e}", path.display()))?);
    }
    Ok(out)
}

/// Appends the current metrics as a new history entry and prunes the
/// ring to [`HISTORY_KEEP`] entries.
///
/// Entries are named `NNNN.json` with a monotonically increasing index,
/// so lexicographic order is chronological order.
///
/// # Errors
///
/// Fails on filesystem errors.
pub fn record(history_dir: &Path, current: &Metrics) -> Result<String, String> {
    fs::create_dir_all(history_dir).map_err(|e| format!("{}: {e}", history_dir.display()))?;
    let mut names: Vec<String> = fs::read_dir(history_dir)
        .map_err(|e| format!("{}: {e}", history_dir.display()))?
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.ends_with(".json"))
        .collect();
    names.sort();
    let next_index = names
        .iter()
        .filter_map(|n| n.trim_end_matches(".json").parse::<u64>().ok())
        .max()
        .map_or(0, |m| m + 1);
    let name = format!("{next_index:04}.json");
    let mut text = String::from("{\n");
    let mut first = true;
    for (key, value) in current {
        if !first {
            text.push_str(",\n");
        }
        first = false;
        text.push_str(&format!("  \"{key}\": {value}"));
    }
    text.push_str("\n}\n");
    let path = history_dir.join(&name);
    let tmp = history_dir.join(format!("{name}.tmp"));
    fs::write(&tmp, text)
        .and_then(|()| fs::rename(&tmp, &path))
        .map_err(|e| format!("{}: {e}", path.display()))?;
    names.push(name.clone());
    names.sort();
    while names.len() > HISTORY_KEEP {
        let victim = names.remove(0);
        let _ = fs::remove_file(history_dir.join(victim));
    }
    Ok(name)
}

/// The median of each key across the history entries. Keys missing from
/// some entries use the median of the entries that have them, so adding
/// a new metric does not need a flag day.
pub fn baseline(history: &[Metrics]) -> Metrics {
    let mut per_key: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
    for entry in history {
        for (key, value) in entry {
            per_key.entry(key).or_default().push(*value);
        }
    }
    per_key
        .into_iter()
        .map(|(key, mut values)| {
            values.sort_by(f64::total_cmp);
            let n = values.len();
            let median = if n % 2 == 1 {
                values[n / 2]
            } else {
                (values[n / 2 - 1] + values[n / 2]) / 2.0
            };
            (key.to_string(), median)
        })
        .collect()
}

/// One metric's verdict after comparison against the baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within tolerance (or improved).
    Pass,
    /// Regressed beyond tolerance — gates the check.
    Fail,
    /// Informational metric; reported, never gating.
    Info,
    /// No history entry has this metric yet.
    NoBaseline,
    /// The current BENCH files do not report this metric.
    Missing,
}

/// One row of the check report.
#[derive(Debug, Clone)]
pub struct MetricCheck {
    /// The metric key.
    pub key: &'static str,
    /// Current value, if present.
    pub current: Option<f64>,
    /// Median-of-history baseline, if any history has the key.
    pub baseline: Option<f64>,
    /// The spec's tolerance.
    pub tolerance: f64,
    /// The verdict.
    pub verdict: Verdict,
}

/// The full report of one `--check` run.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// One row per [`SPECS`] entry, in table order.
    pub rows: Vec<MetricCheck>,
    /// How many history entries fed the baseline.
    pub history_len: usize,
}

impl CheckReport {
    /// Whether the gate passes (no `Fail` rows).
    pub fn passed(&self) -> bool {
        self.rows.iter().all(|r| r.verdict != Verdict::Fail)
    }

    /// Renders the report as an aligned text table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "perf check against median of {} history entr{}",
            self.history_len,
            if self.history_len == 1 { "y" } else { "ies" }
        );
        let _ = writeln!(
            out,
            "{:<36} {:>14} {:>14} {:>7}  verdict",
            "metric", "current", "baseline", "tol"
        );
        for row in &self.rows {
            let fmt = |v: Option<f64>| v.map_or_else(|| "-".to_string(), |v| format!("{v:.3}"));
            let verdict = match row.verdict {
                Verdict::Pass => "ok",
                Verdict::Fail => "REGRESSED",
                Verdict::Info => "info",
                Verdict::NoBaseline => "no baseline",
                Verdict::Missing => "missing",
            };
            let _ = writeln!(
                out,
                "{:<36} {:>14} {:>14} {:>6.0}%  {verdict}",
                row.key,
                fmt(row.current),
                fmt(row.baseline),
                row.tolerance * 100.0
            );
        }
        out
    }
}

/// Compares `current` against the median of `history` under [`SPECS`].
///
/// Metrics absent from all history pass as `NoBaseline` (a new metric
/// must not fail the first run after it is added); metrics absent from
/// `current` pass as `Missing` (a partial bench run checks what it has).
pub fn check(current: &Metrics, history: &[Metrics]) -> CheckReport {
    let base = baseline(history);
    let rows = SPECS
        .iter()
        .map(|spec| {
            let cur = current.get(spec.key).copied();
            let bas = base.get(spec.key).copied();
            let verdict = match (spec.direction, cur, bas) {
                (Direction::Informational, _, _) => Verdict::Info,
                (_, None, _) => Verdict::Missing,
                (_, _, None) => Verdict::NoBaseline,
                (Direction::HigherIsBetter, Some(c), Some(b)) => {
                    if c < b * (1.0 - spec.tolerance) {
                        Verdict::Fail
                    } else {
                        Verdict::Pass
                    }
                }
                (Direction::LowerIsBetter, Some(c), Some(b)) => {
                    if c > b * (1.0 + spec.tolerance) {
                        Verdict::Fail
                    } else {
                        Verdict::Pass
                    }
                }
            };
            MetricCheck {
                key: spec.key,
                current: cur,
                baseline: bas,
                tolerance: spec.tolerance,
                verdict,
            }
        })
        .collect();
    CheckReport {
        rows,
        history_len: history.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(pairs: &[(&str, f64)]) -> Metrics {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn parses_pretty_printed_bench_json_with_booleans() {
        let m = parse_metrics(
            "{\n  \"warm_speedup\": 1.44,\n  \"bit_identical\": true,\n  \"note\": \"x\"\n}\n",
        )
        .unwrap();
        assert_eq!(m.get("warm_speedup"), Some(&1.44));
        assert_eq!(m.get("bit_identical"), Some(&1.0));
        assert!(!m.contains_key("note"), "strings are not metrics");
    }

    #[test]
    fn baseline_is_the_per_key_median() {
        let history = vec![
            metrics(&[("a", 1.0), ("b", 10.0)]),
            metrics(&[("a", 100.0), ("b", 20.0)]),
            metrics(&[("a", 3.0)]),
        ];
        let base = baseline(&history);
        // Odd count: middle value; the 100.0 outlier does not drag it.
        assert_eq!(base.get("a"), Some(&3.0));
        // Even count (b missing from one entry): mean of the middle two.
        assert_eq!(base.get("b"), Some(&15.0));
    }

    #[test]
    fn matching_current_passes() {
        let history = vec![metrics(&[
            ("grid_kernel_simd_ops_per_sec", 50_000.0),
            ("bit_identical", 1.0),
        ])];
        let report = check(&history[0].clone(), &history);
        assert!(
            report.passed(),
            "identical metrics must pass:\n{}",
            report.render()
        );
    }

    #[test]
    fn injected_regression_fails_the_gate() {
        let history = vec![
            metrics(&[("grid_kernel_simd_ops_per_sec", 50_000.0)]),
            metrics(&[("grid_kernel_simd_ops_per_sec", 52_000.0)]),
            metrics(&[("grid_kernel_simd_ops_per_sec", 48_000.0)]),
        ];
        // 3× slowdown: far beyond the 50% tolerance.
        let current = metrics(&[("grid_kernel_simd_ops_per_sec", 16_000.0)]);
        let report = check(&current, &history);
        assert!(!report.passed());
        let row = report
            .rows
            .iter()
            .find(|r| r.key == "grid_kernel_simd_ops_per_sec")
            .unwrap();
        assert_eq!(row.verdict, Verdict::Fail);
        assert!(report.render().contains("REGRESSED"));
    }

    #[test]
    fn lower_is_better_gates_on_rises() {
        let history = vec![metrics(&[("snapshot_bytes", 160_000.0)])];
        let shrunk = metrics(&[("snapshot_bytes", 150_000.0)]);
        assert!(check(&shrunk, &history).passed(), "shrinking is fine");
        let grown = metrics(&[("snapshot_bytes", 200_000.0)]);
        assert!(!check(&grown, &history).passed(), "25% growth beats 2% tol");
    }

    #[test]
    fn informational_metric_never_fails() {
        let history = vec![metrics(&[("grid_update_f32_speedup", 0.95)])];
        let tanked = metrics(&[("grid_update_f32_speedup", 0.1)]);
        let report = check(&tanked, &history);
        assert!(report.passed());
        let row = report
            .rows
            .iter()
            .find(|r| r.key == "grid_update_f32_speedup")
            .unwrap();
        assert_eq!(row.verdict, Verdict::Info);
    }

    #[test]
    fn bit_identical_false_fails_against_true_baseline() {
        let history = vec![metrics(&[("bit_identical", 1.0)])];
        let broken = metrics(&[("bit_identical", 0.0)]);
        assert!(!check(&broken, &history).passed());
    }

    #[test]
    fn new_metric_without_history_passes() {
        let history = vec![metrics(&[("unrelated", 1.0)])];
        let current = metrics(&[("grid_kernel_simd_ops_per_sec", 50_000.0)]);
        let report = check(&current, &history);
        assert!(report.passed());
        let row = report
            .rows
            .iter()
            .find(|r| r.key == "grid_kernel_simd_ops_per_sec")
            .unwrap();
        assert_eq!(row.verdict, Verdict::NoBaseline);
    }

    #[test]
    fn record_rotates_the_ring() {
        let dir = std::env::temp_dir().join(format!(
            "cocoa-regress-ring-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let m = metrics(&[("a", 1.0), ("bit_identical", 1.0)]);
        for _ in 0..(HISTORY_KEEP + 3) {
            record(&dir, &m).unwrap();
        }
        let history = load_history(&dir).unwrap();
        assert_eq!(history.len(), HISTORY_KEEP, "ring prunes to the cap");
        // Round-trip: the stored entries parse back to the same metrics.
        assert_eq!(history[0], m);
        // Indices keep increasing, so the newest survives pruning.
        let mut names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .collect();
        names.sort();
        assert_eq!(
            names.last().unwrap(),
            &format!("{:04}.json", HISTORY_KEEP + 2)
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_history_dir_is_a_fresh_start() {
        let dir = Path::new("/nonexistent/cocoa-regress-history");
        assert!(load_history(dir).unwrap().is_empty());
    }
}
