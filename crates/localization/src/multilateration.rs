//! The classic baseline: weighted least-squares multilateration.
//!
//! The paper's related-work section (Section 5) positions Bayesian
//! inference against the textbook alternative: "When distance to three or
//! more landmarks is known, triangulation or multilateration can be used
//! … This approach depends highly on the quality of the distance
//! measurements … If the measurements are not accurate enough, which is
//! usually the case for RF signals, the localization error can be large."
//!
//! This module implements that baseline — Gauss–Newton weighted
//! least-squares over the ranges implied by the PDF Table — so the claim
//! can be measured: the ablation bench runs CoCoA with either algorithm
//! and compares accuracy under identical beacons.

use serde::{Deserialize, Serialize};

use cocoa_net::calibration::PdfTable;
use cocoa_net::geometry::{Area, Point};
use cocoa_net::rssi::Dbm;

/// One range observation derived from a beacon.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RangeObservation {
    /// Beacon (landmark) position.
    pub anchor: Point,
    /// Estimated distance to the anchor, metres (the PDF's mean).
    pub range: f64,
    /// Weight = 1/σ² of the distance estimate.
    pub weight: f64,
}

/// Configuration of the solver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultilaterationConfig {
    /// Maximum Gauss–Newton iterations.
    pub max_iterations: u32,
    /// Convergence threshold on the update step, metres.
    pub tolerance_m: f64,
}

impl Default for MultilaterationConfig {
    fn default() -> Self {
        MultilaterationConfig {
            max_iterations: 25,
            tolerance_m: 1e-3,
        }
    }
}

/// A batch multilateration estimator fed by beacons, mirroring the window
/// lifecycle of the Bayesian localizer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Multilaterator {
    area: Area,
    config: MultilaterationConfig,
    observations: Vec<RangeObservation>,
}

impl Multilaterator {
    /// Creates an estimator bounded to `area` (estimates are clamped to
    /// the deployment area, like the Bayesian grid's support).
    pub fn new(area: Area, config: MultilaterationConfig) -> Self {
        Multilaterator {
            area,
            config,
            observations: Vec::new(),
        }
    }

    /// Adds a beacon: the observed RSSI is converted to a range via the
    /// PDF Table (mean and sigma of the bin's distance PDF). Returns
    /// `false` when the RSSI has no usable table entry.
    pub fn observe_beacon(&mut self, table: &PdfTable, anchor: Point, rssi: Dbm) -> bool {
        let Some(pdf) = table.lookup(rssi) else {
            return false;
        };
        let sigma = pdf.sigma().max(0.25);
        self.observations.push(RangeObservation {
            anchor,
            range: pdf.mean(),
            weight: 1.0 / (sigma * sigma),
        });
        true
    }

    /// Number of ranges collected.
    pub fn observations(&self) -> usize {
        self.observations.len()
    }

    /// The ranges collected so far.
    pub fn ranges(&self) -> &[RangeObservation] {
        &self.observations
    }

    /// Overwrites the collected ranges with checkpointed ones.
    pub fn restore_ranges(&mut self, ranges: Vec<RangeObservation>) {
        self.observations = ranges;
    }

    /// Clears collected ranges (start of a new window).
    pub fn reset(&mut self) {
        self.observations.clear();
    }

    /// Solves for the position, requiring at least three ranges (the same
    /// rule the paper applies to the Bayesian algorithm).
    pub fn estimate(&self) -> Option<Point> {
        if self.observations.len() < 3 {
            return None;
        }
        // Start from the weighted centroid of the anchors — robust and
        // always inside the convex hull.
        let wsum: f64 = self.observations.iter().map(|o| o.weight).sum();
        let mut p = Point::new(
            self.observations
                .iter()
                .map(|o| o.anchor.x * o.weight)
                .sum::<f64>()
                / wsum,
            self.observations
                .iter()
                .map(|o| o.anchor.y * o.weight)
                .sum::<f64>()
                / wsum,
        );
        for _ in 0..self.config.max_iterations {
            // Gauss–Newton on r_i(p) = |p - a_i| - d_i with weights w_i:
            // solve (JᵀWJ) δ = -JᵀWr, J_i = (p - a_i)/|p - a_i|.
            let mut h11 = 0.0;
            let mut h12 = 0.0;
            let mut h22 = 0.0;
            let mut g1 = 0.0;
            let mut g2 = 0.0;
            for o in &self.observations {
                let dx = p.x - o.anchor.x;
                let dy = p.y - o.anchor.y;
                let dist = (dx * dx + dy * dy).sqrt().max(1e-6);
                let jx = dx / dist;
                let jy = dy / dist;
                let r = dist - o.range;
                h11 += o.weight * jx * jx;
                h12 += o.weight * jx * jy;
                h22 += o.weight * jy * jy;
                g1 += o.weight * jx * r;
                g2 += o.weight * jy * r;
            }
            // Levenberg damping keeps the 2x2 system well-conditioned when
            // anchors are collinear.
            let lambda = 1e-6 * (h11 + h22).max(1.0);
            let (a, b, c) = (h11 + lambda, h12, h22 + lambda);
            let det = a * c - b * b;
            if det.abs() < 1e-12 {
                break;
            }
            let dx = (-g1 * c + g2 * b) / det;
            let dy = (g1 * b - g2 * a) / det;
            p = Point::new(p.x + dx, p.y + dy);
            if dx.hypot(dy) < self.config.tolerance_m {
                break;
            }
        }
        Some(self.area.clamp(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocoa_net::calibration::{calibrate, CalibrationConfig};
    use cocoa_net::channel::RfChannel;
    use cocoa_sim::rng::SeedSplitter;

    fn solver() -> Multilaterator {
        Multilaterator::new(Area::square(200.0), MultilaterationConfig::default())
    }

    fn with_exact_ranges(robot: Point, anchors: &[Point]) -> Multilaterator {
        let mut m = solver();
        for &a in anchors {
            m.observations.push(RangeObservation {
                anchor: a,
                range: robot.distance_to(a),
                weight: 1.0,
            });
        }
        m
    }

    #[test]
    fn exact_ranges_recover_position() {
        let robot = Point::new(120.0, 60.0);
        let anchors = [
            Point::new(100.0, 50.0),
            Point::new(140.0, 80.0),
            Point::new(110.0, 90.0),
            Point::new(150.0, 40.0),
        ];
        let m = with_exact_ranges(robot, &anchors);
        let est = m.estimate().expect("enough anchors");
        assert!(
            est.distance_to(robot) < 0.01,
            "error {}",
            est.distance_to(robot)
        );
    }

    #[test]
    fn requires_three_ranges() {
        let robot = Point::new(100.0, 100.0);
        let m = with_exact_ranges(robot, &[Point::new(90.0, 100.0), Point::new(110.0, 100.0)]);
        assert_eq!(m.estimate(), None);
    }

    #[test]
    fn collinear_anchors_do_not_crash() {
        let robot = Point::new(100.0, 110.0);
        // All anchors on a line: the problem is ambiguous (mirror
        // solution); the solver must still terminate inside the area.
        let anchors = [
            Point::new(80.0, 100.0),
            Point::new(100.0, 100.0),
            Point::new(120.0, 100.0),
        ];
        let m = with_exact_ranges(robot, &anchors);
        let est = m.estimate().expect("estimate exists");
        assert!(Area::square(200.0).contains(est));
        // x is identifiable even when y is ambiguous.
        assert!((est.x - 100.0).abs() < 1.0, "x {}", est.x);
    }

    #[test]
    fn estimate_clamped_to_area() {
        let robot = Point::new(1.0, 1.0);
        let anchors = [
            Point::new(0.5, 0.0),
            Point::new(0.0, 0.5),
            Point::new(2.0, 2.0),
        ];
        let m = with_exact_ranges(robot, &anchors);
        let est = m.estimate().unwrap();
        assert!(Area::square(200.0).contains(est));
    }

    #[test]
    fn reset_clears_observations() {
        let mut m = with_exact_ranges(Point::new(50.0, 50.0), &[Point::new(40.0, 50.0)]);
        assert_eq!(m.observations(), 1);
        m.reset();
        assert_eq!(m.observations(), 0);
    }

    #[test]
    fn works_through_the_pdf_table() {
        let ch = RfChannel::default();
        let table = calibrate(
            &ch,
            &CalibrationConfig::default(),
            &mut SeedSplitter::new(3).stream("cal", 0),
        );
        let robot = Point::new(100.0, 100.0);
        let anchors = [
            Point::new(92.0, 100.0),
            Point::new(108.0, 106.0),
            Point::new(100.0, 90.0),
            Point::new(88.0, 110.0),
        ];
        let mut rng = SeedSplitter::new(4).stream("probe", 0);
        let mut m = solver();
        for &a in &anchors {
            let rssi = ch.sample_rssi(robot.distance_to(a), &mut rng);
            m.observe_beacon(&table, a, rssi);
        }
        let est = m.estimate().expect("four beacons");
        assert!(
            est.distance_to(robot) < 10.0,
            "error {} m from nearby anchors",
            est.distance_to(robot)
        );
    }

    #[test]
    fn unusable_rssi_rejected() {
        let ch = RfChannel::default();
        let table = calibrate(
            &ch,
            &CalibrationConfig::default(),
            &mut SeedSplitter::new(3).stream("cal", 0),
        );
        let mut m = solver();
        assert!(!m.observe_beacon(&table, Point::new(1.0, 1.0), Dbm::new(25.0)));
        assert_eq!(m.observations(), 0);
    }

    #[test]
    fn far_anchor_noise_hurts_multilateration_more_than_bayes() {
        // The paper's Section 5 claim: naive multilateration suffers under
        // noisy RF ranges. Compare both algorithms on far anchors.
        use crate::bayes::BayesianLocalizer;
        use crate::grid::GridConfig;
        let ch = RfChannel::default();
        let table = calibrate(
            &ch,
            &CalibrationConfig::default(),
            &mut SeedSplitter::new(5).stream("cal", 0),
        );
        let robot = Point::new(100.0, 100.0);
        // Anchors 60-90 m away: deep-fade territory.
        let anchors = [
            Point::new(30.0, 100.0),
            Point::new(170.0, 110.0),
            Point::new(100.0, 25.0),
            Point::new(110.0, 180.0),
        ];
        let trials = 20;
        let mut bayes_total = 0.0;
        let mut lateration_total = 0.0;
        for t in 0..trials {
            let mut rng = SeedSplitter::new(100 + t).stream("probe", 0);
            let mut bayes = BayesianLocalizer::new(GridConfig::new(Area::square(200.0), 2.0));
            let mut lateration = solver();
            for &a in &anchors {
                let rssi = ch.sample_rssi(robot.distance_to(a), &mut rng);
                bayes.observe_beacon(&table, a, rssi);
                lateration.observe_beacon(&table, a, rssi);
            }
            bayes_total += bayes.estimate().map_or(150.0, |e| e.distance_to(robot));
            lateration_total += lateration
                .estimate()
                .map_or(150.0, |e| e.distance_to(robot));
        }
        let bayes_mean = bayes_total / trials as f64;
        let lateration_mean = lateration_total / trials as f64;
        // Bayes should be at least competitive; typically clearly better.
        assert!(
            bayes_mean <= lateration_mean * 1.2,
            "bayes {bayes_mean:.1} m vs multilateration {lateration_mean:.1} m"
        );
    }
}
