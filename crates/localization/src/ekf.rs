//! An EKF position tracker: the Kalman-family alternative to CoCoA's
//! reset-style fusion.
//!
//! The paper's related work (Section 5) surveys Kalman-filter approaches
//! to cooperative localization (Roumeliotis & Bekey's Collective
//! Localization, among others) and notes that CoCoA "is not tied to a
//! specific localization technique". This module provides that
//! alternative: a 2-state extended Kalman filter over the robot's
//! position, with
//!
//! - **prediction** from dead-reckoned odometry displacements (process
//!   noise grows with distance travelled, mirroring the odometry model's
//!   displacement and heading noise), and
//! - **updates** from beacon ranges (measurement model `h(x) = |x − a|`),
//!   with innovation gating to reject multipath outliers.
//!
//! Unlike the windowed Bayesian estimator it never throws information
//! away, so it shines when beacons trickle in continuously; the
//! `ekf_fusion` example compares the two styles head to head.

use serde::{Deserialize, Serialize};

use cocoa_net::calibration::PdfTable;
use cocoa_net::geometry::{Area, Point, Vec2};
use cocoa_net::rssi::Dbm;

/// EKF tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EkfConfig {
    /// 1-σ uncertainty of the initial position, metres. Large values
    /// encode "deployed anywhere" (the paper's arbitrary deployment).
    pub initial_sigma_m: f64,
    /// Along-track process noise per metre travelled, m/√m — from the
    /// odometry displacement error.
    pub process_noise_along_m: f64,
    /// Cross-track process noise per metre travelled, m/√m — from heading
    /// error (the dominant term).
    pub process_noise_cross_m: f64,
    /// Innovation gate, in standard deviations; range updates whose
    /// innovation exceeds this are rejected as outliers.
    pub gate_sigmas: f64,
    /// After this many *consecutive* gated updates the covariance is
    /// inflated (×10): persistent gating means the filter is confidently
    /// wrong — e.g. locked onto the mirror intersection of two range
    /// circles — and must re-open to evidence.
    pub gate_reset_after: u32,
}

impl Default for EkfConfig {
    fn default() -> Self {
        EkfConfig {
            initial_sigma_m: 100.0,
            process_noise_along_m: 0.1,
            process_noise_cross_m: 0.2,
            gate_sigmas: 3.0,
            gate_reset_after: 2,
        }
    }
}

/// What happened to one range update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EkfUpdate {
    /// The measurement was fused.
    Applied,
    /// The innovation failed the gate; the state is unchanged.
    Gated,
    /// The RSSI had no usable PDF-table entry.
    NoPdf,
}

/// A 2-state (x, y) extended Kalman filter over beacon ranges.
///
/// # Examples
///
/// ```
/// use cocoa_localization::ekf::{EkfConfig, EkfLocalizer};
/// use cocoa_net::geometry::{Area, Point};
///
/// // Initialize near a coarse first fix (range-only EKFs are local
/// // estimators; the Bayesian grid handles the cold start).
/// let config = EkfConfig { initial_sigma_m: 15.0, ..EkfConfig::default() };
/// let mut ekf = EkfLocalizer::new(config, Area::square(200.0), Some(Point::new(115.0, 85.0)));
/// let robot = Point::new(120.0, 80.0);
/// for _ in 0..2 {
///     for anchor in [Point::new(100.0, 80.0), Point::new(130.0, 95.0), Point::new(120.0, 60.0)] {
///         // Perfect ranges with 2 m claimed noise.
///         ekf.update_range(anchor, robot.distance_to(anchor), 2.0);
///     }
/// }
/// assert!(ekf.estimate().distance_to(robot) < 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EkfLocalizer {
    config: EkfConfig,
    area: Area,
    /// State: believed position.
    x: f64,
    y: f64,
    /// Covariance (symmetric 2×2).
    p11: f64,
    p12: f64,
    p22: f64,
    updates_applied: u64,
    updates_gated: u64,
    consecutive_gated: u32,
}

impl EkfLocalizer {
    /// Creates a filter. With `initial = None` the state starts at the
    /// area centre with the configured large uncertainty.
    pub fn new(config: EkfConfig, area: Area, initial: Option<Point>) -> Self {
        let start = initial.unwrap_or_else(|| area.center());
        let var = config.initial_sigma_m * config.initial_sigma_m;
        EkfLocalizer {
            config,
            area,
            x: start.x,
            y: start.y,
            p11: var,
            p12: 0.0,
            p22: var,
            updates_applied: 0,
            updates_gated: 0,
            consecutive_gated: 0,
        }
    }

    /// The current position estimate (clamped to the deployment area).
    pub fn estimate(&self) -> Point {
        self.area.clamp(Point::new(self.x, self.y))
    }

    /// RMS position uncertainty, metres (`sqrt(trace(P)/2)`).
    pub fn uncertainty(&self) -> f64 {
        ((self.p11 + self.p22) / 2.0).sqrt()
    }

    /// Range updates fused so far.
    pub fn updates_applied(&self) -> u64 {
        self.updates_applied
    }

    /// Range updates rejected by the gate so far.
    pub fn updates_gated(&self) -> u64 {
        self.updates_gated
    }

    /// Prediction step: the odometer reports a displacement since the
    /// last call. The state moves by it; the covariance grows with the
    /// distance travelled, anisotropically (cross-track grows faster —
    /// heading error dominates odometry drift).
    pub fn predict(&mut self, displacement: Vec2) {
        self.x += displacement.x;
        self.y += displacement.y;
        let d = displacement.norm();
        if d <= 0.0 {
            return;
        }
        let along = self.config.process_noise_along_m.powi(2) * d;
        let cross = self.config.process_noise_cross_m.powi(2) * d;
        match displacement.normalized() {
            Some(u) => {
                // Q = along·uuᵀ + cross·vvᵀ with v ⟂ u.
                let (ux, uy) = (u.x, u.y);
                self.p11 += along * ux * ux + cross * uy * uy;
                self.p22 += along * uy * uy + cross * ux * ux;
                self.p12 += (along - cross) * ux * uy;
            }
            None => {
                self.p11 += along;
                self.p22 += along;
            }
        }
    }

    /// Fuses one range measurement `range` (with 1-σ noise `sigma`) to
    /// `anchor`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is not strictly positive.
    pub fn update_range(&mut self, anchor: Point, range: f64, sigma: f64) -> EkfUpdate {
        assert!(sigma > 0.0, "range sigma must be positive");
        // Iterated EKF: with a vague prior, a single linearization of the
        // range model diverges; re-linearizing at the updated state (3
        // Gauss-Newton iterations) keeps the filter consistent.
        let (x0, y0) = (self.x, self.y);
        let (mut xi, mut yi) = (x0, y0);
        let mut linearization = None;
        for iteration in 0..3 {
            let dx = xi - anchor.x;
            let dy = yi - anchor.y;
            let predicted = (dx * dx + dy * dy).sqrt().max(1e-6);
            let hx = dx / predicted;
            let hy = dy / predicted;
            let phx = self.p11 * hx + self.p12 * hy;
            let phy = self.p12 * hx + self.p22 * hy;
            let s = hx * phx + hy * phy + sigma * sigma;
            // IEKF residual: z − h(x_i) − H_i (x0 − x_i).
            let residual = range - predicted - (hx * (x0 - xi) + hy * (y0 - yi));
            if iteration == 0 && residual * residual > self.config.gate_sigmas.powi(2) * s {
                self.updates_gated += 1;
                self.consecutive_gated += 1;
                if self.consecutive_gated >= self.config.gate_reset_after {
                    // Confidently wrong: inflate and re-open to evidence.
                    self.p11 *= 10.0;
                    self.p22 *= 10.0;
                    self.p12 *= 10.0;
                    self.consecutive_gated = 0;
                }
                return EkfUpdate::Gated;
            }
            let kx = phx / s;
            let ky = phy / s;
            xi = x0 + kx * residual;
            yi = y0 + ky * residual;
            linearization = Some((hx, hy, phx, phy, s));
        }
        let (_hx, _hy, phx, phy, s) = linearization.expect("three iterations ran");
        self.x = xi;
        self.y = yi;
        // Covariance update P ← (I − K H) P with the final linearization,
        // symmetrized.
        let kx = phx / s;
        let ky = phy / s;
        let p11 = self.p11 - kx * phx;
        let p12 = self.p12 - kx * phy;
        let p21 = self.p12 - ky * phx;
        let p22 = self.p22 - ky * phy;
        self.p11 = p11.max(1e-9);
        self.p22 = p22.max(1e-9);
        self.p12 = (p12 + p21) / 2.0;
        self.updates_applied += 1;
        self.consecutive_gated = 0;
        EkfUpdate::Applied
    }

    /// Fuses one beacon through the calibration table (range = PDF mean,
    /// sigma = PDF sigma), like the other estimators do.
    ///
    /// This is the raw filter interface: it applies only the filter's own
    /// innovation gate. The *shared* beacon outlier gate (claimed distance
    /// vs RSSI-implied distance) is enforced one layer up, by
    /// [`crate::estimator::WindowedRfEstimator::observe_beacon_checked`],
    /// which screens beacons before any backend — this one included — sees
    /// them.
    pub fn update_from_beacon(&mut self, table: &PdfTable, anchor: Point, rssi: Dbm) -> EkfUpdate {
        match table.lookup(rssi) {
            Some(pdf) => self.update_range(anchor, pdf.mean(), pdf.sigma().max(0.25)),
            None => EkfUpdate::NoPdf,
        }
    }

    /// The filter's complete internal state as checkpoint data.
    pub fn snapshot(&self) -> EkfSnapshot {
        EkfSnapshot {
            x: self.x,
            y: self.y,
            p11: self.p11,
            p12: self.p12,
            p22: self.p22,
            updates_applied: self.updates_applied,
            updates_gated: self.updates_gated,
            consecutive_gated: self.consecutive_gated,
        }
    }

    /// Restores the internal state captured by
    /// [`snapshot`](Self::snapshot). Configuration and area are not part
    /// of the snapshot; the filter must be constructed with the same ones
    /// the original had.
    pub fn restore_snapshot(&mut self, s: EkfSnapshot) {
        self.x = s.x;
        self.y = s.y;
        self.p11 = s.p11;
        self.p12 = s.p12;
        self.p22 = s.p22;
        self.updates_applied = s.updates_applied;
        self.updates_gated = s.updates_gated;
        self.consecutive_gated = s.consecutive_gated;
    }
}

/// The filter's internal state — position, covariance and gate counters —
/// as checkpoint data (see [`EkfLocalizer::snapshot`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EkfSnapshot {
    /// Believed x position, metres.
    pub x: f64,
    /// Believed y position, metres.
    pub y: f64,
    /// Covariance entry P₁₁.
    pub p11: f64,
    /// Covariance entry P₁₂ (= P₂₁).
    pub p12: f64,
    /// Covariance entry P₂₂.
    pub p22: f64,
    /// Range updates fused so far.
    pub updates_applied: u64,
    /// Range updates rejected by the gate so far.
    pub updates_gated: u64,
    /// Length of the current consecutive-rejection streak.
    pub consecutive_gated: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ekf() -> EkfLocalizer {
        EkfLocalizer::new(EkfConfig::default(), Area::square(200.0), None)
    }

    #[test]
    fn converges_from_coarse_initialization() {
        // Range-only EKFs are local estimators: they refine a coarse
        // initial guess (e.g. CoCoA's first Bayesian fix) but cannot do
        // global localization from a uniform prior — which is exactly why
        // the paper chose Bayesian grid inference for the cold start.
        let mut f = EkfLocalizer::new(
            EkfConfig {
                initial_sigma_m: 15.0,
                ..EkfConfig::default()
            },
            Area::square(200.0),
            Some(Point::new(145.0, 47.0)), // ~9 m off, nearer the true
                                           // circle intersection than its mirror
        );
        let robot = Point::new(150.0, 40.0);
        let anchors = [
            Point::new(130.0, 40.0),
            Point::new(160.0, 55.0),
            Point::new(150.0, 20.0),
            Point::new(170.0, 35.0),
        ];
        let initial_unc = f.uncertainty();
        for _ in 0..3 {
            for &a in &anchors {
                f.update_range(a, robot.distance_to(a), 2.0);
            }
        }
        assert!(
            f.estimate().distance_to(robot) < 3.0,
            "est {}",
            f.estimate()
        );
        assert!(f.uncertainty() < initial_unc / 5.0);
    }

    #[test]
    fn global_localization_from_uniform_prior_is_unreliable() {
        // Documents the limitation above: from the area centre with a
        // ~100 m sigma, range updates may settle in the mirror
        // intersection of the range circles (a local minimum).
        let mut f = ekf();
        let robot = Point::new(150.0, 40.0);
        let anchors = [
            Point::new(130.0, 40.0),
            Point::new(160.0, 55.0),
            Point::new(150.0, 20.0),
        ];
        for _ in 0..4 {
            for &a in &anchors {
                f.update_range(a, robot.distance_to(a), 2.0);
            }
        }
        // It gets into the right neighbourhood (anchors constrain it) but
        // is not guaranteed the accuracy of the Bayesian cold start.
        assert!(f.estimate().distance_to(robot) < 60.0);
    }

    #[test]
    fn persistent_gating_inflates_covariance() {
        // A confidently-wrong filter (tiny P, biased state) must re-open
        // to evidence after enough consecutive rejections.
        let mut f = EkfLocalizer::new(
            EkfConfig {
                initial_sigma_m: 1.0, // confidently...
                ..EkfConfig::default()
            },
            Area::square(200.0),
            Some(Point::new(60.0, 60.0)), // ...wrong
        );
        let robot = Point::new(100.0, 100.0);
        let anchor = Point::new(95.0, 100.0);
        let unc0 = f.uncertainty();
        let mut applied = false;
        for _ in 0..8 {
            if f.update_range(anchor, robot.distance_to(anchor), 1.0) == EkfUpdate::Applied {
                applied = true;
                break;
            }
        }
        assert!(
            applied,
            "inflation must eventually let the measurement through (unc0 {unc0}, now {})",
            f.uncertainty()
        );
        assert!(f.updates_gated() >= 2, "the gate fired first");
    }

    #[test]
    fn gate_reopens_after_the_configured_streak() {
        // Pins the `gate_reset_after` contract: the first N−1 consecutive
        // rejections leave the covariance untouched, the Nth inflates it
        // ×10 (σ ×√10) and resets the streak, and the reopened gate
        // eventually lets the honest measurement through.
        let mut f = EkfLocalizer::new(
            EkfConfig {
                initial_sigma_m: 1.0,
                gate_reset_after: 3,
                ..EkfConfig::default()
            },
            Area::square(200.0),
            Some(Point::new(60.0, 60.0)), // confidently wrong
        );
        let robot = Point::new(100.0, 100.0);
        let anchor = Point::new(95.0, 100.0);
        let range = robot.distance_to(anchor);
        let unc0 = f.uncertainty();
        for i in 0..2 {
            assert_eq!(
                f.update_range(anchor, range, 1.0),
                EkfUpdate::Gated,
                "rejection {i} must be gated"
            );
            assert_eq!(
                f.uncertainty(),
                unc0,
                "rejection {i} is below the streak; P must not move"
            );
        }
        assert_eq!(f.update_range(anchor, range, 1.0), EkfUpdate::Gated);
        assert!(
            (f.uncertainty() - unc0 * 10f64.sqrt()).abs() < 1e-9,
            "the streak's 3rd rejection must inflate σ by √10: {} vs {}",
            f.uncertainty(),
            unc0 * 10f64.sqrt()
        );
        assert_eq!(f.updates_gated(), 3);
        // The gate reopened: repeated inflation admits the measurement,
        // which pulls the confidently-wrong state toward the truth.
        let err0 = f.estimate().distance_to(robot);
        let mut applied = false;
        for _ in 0..12 {
            if f.update_range(anchor, range, 1.0) == EkfUpdate::Applied {
                applied = true;
                break;
            }
        }
        assert!(applied, "the reopened gate must admit the measurement");
        assert!(f.estimate().distance_to(robot) < err0);
    }

    #[test]
    fn snapshot_round_trips_bit_exactly() {
        let mut f = ekf();
        let robot = Point::new(100.0, 100.0);
        f.predict(Vec2::new(3.0, -2.0));
        for &a in &[
            Point::new(90.0, 100.0),
            Point::new(110.0, 108.0),
            Point::new(100.0, 88.0),
        ] {
            f.update_range(a, robot.distance_to(a), 1.0);
        }
        f.update_range(Point::new(95.0, 100.0), 120.0, 1.0); // gated
        let s = f.snapshot();
        let mut g = ekf();
        g.restore_snapshot(s);
        assert_eq!(f, g);
        assert_eq!(g.snapshot(), s);
    }

    #[test]
    fn prediction_moves_state_and_grows_uncertainty() {
        let mut f = ekf();
        // Tighten first.
        let robot = Point::new(100.0, 100.0);
        for &a in &[
            Point::new(90.0, 100.0),
            Point::new(110.0, 108.0),
            Point::new(100.0, 88.0),
        ] {
            f.update_range(a, robot.distance_to(a), 1.0);
            f.update_range(a, robot.distance_to(a), 1.0);
        }
        let unc_before = f.uncertainty();
        let est_before = f.estimate();
        f.predict(Vec2::new(10.0, 0.0));
        assert!((f.estimate().x - (est_before.x + 10.0)).abs() < 1e-9);
        assert!(f.uncertainty() > unc_before, "prediction must inflate P");
    }

    #[test]
    fn gate_rejects_outliers() {
        let mut f = ekf();
        let robot = Point::new(100.0, 100.0);
        let anchors = [
            Point::new(90.0, 100.0),
            Point::new(110.0, 108.0),
            Point::new(100.0, 88.0),
        ];
        for _ in 0..3 {
            for &a in &anchors {
                f.update_range(a, robot.distance_to(a), 1.0);
            }
        }
        let est = f.estimate();
        // A wildly wrong range (multipath ghost) must be gated.
        let outcome = f.update_range(Point::new(95.0, 100.0), 120.0, 1.0);
        assert_eq!(outcome, EkfUpdate::Gated);
        assert_eq!(f.estimate(), est, "gated update must not move the state");
        assert_eq!(f.updates_gated(), 1);
    }

    #[test]
    fn tracks_a_moving_robot() {
        use cocoa_sim::dist::Normal;
        use cocoa_sim::rng::SeedSplitter;
        let mut rng = SeedSplitter::new(8).stream("ekf", 0);
        let mut f = ekf();
        let anchors = [
            Point::new(50.0, 50.0),
            Point::new(150.0, 50.0),
            Point::new(100.0, 150.0),
            Point::new(60.0, 130.0),
        ];
        let noise = Normal::new(0.0, 1.5);
        let mut robot = Point::new(80.0, 80.0);
        let v = Vec2::new(1.0, 0.4);
        let mut last_err = f64::INFINITY;
        for step in 0..60 {
            robot += v;
            // Odometry-reported displacement with small error.
            f.predict(Vec2::new(
                v.x + 0.05 * noise.sample(&mut rng),
                v.y + 0.05 * noise.sample(&mut rng),
            ));
            for &a in &anchors {
                let measured = robot.distance_to(a) + noise.sample(&mut rng);
                f.update_range(a, measured.max(0.1), 1.5);
            }
            if step > 10 {
                last_err = f.estimate().distance_to(robot);
                assert!(last_err < 6.0, "lost track at step {step}: {last_err} m");
            }
        }
        assert!(last_err < 4.0, "final error {last_err}");
    }

    #[test]
    fn cross_track_noise_dominates() {
        let mut f = ekf();
        // Travel straight east; cross-track (y) variance must grow faster.
        f.p11 = 1.0;
        f.p22 = 1.0;
        f.p12 = 0.0;
        f.predict(Vec2::new(100.0, 0.0));
        assert!(f.p22 > f.p11, "cross-track {} vs along {}", f.p22, f.p11);
    }

    #[test]
    fn estimate_clamped_to_area() {
        let mut f = ekf();
        f.predict(Vec2::new(10_000.0, 0.0));
        assert!(Area::square(200.0).contains(f.estimate()));
    }

    #[test]
    #[should_panic(expected = "sigma")]
    fn zero_sigma_rejected() {
        let mut f = ekf();
        f.update_range(Point::ORIGIN, 5.0, 0.0);
    }

    #[test]
    fn beacon_interface_uses_table() {
        use cocoa_net::calibration::{calibrate, CalibrationConfig};
        use cocoa_net::channel::RfChannel;
        use cocoa_sim::rng::SeedSplitter;
        let ch = RfChannel::default();
        let table = calibrate(
            &ch,
            &CalibrationConfig::default(),
            &mut SeedSplitter::new(2).stream("cal", 0),
        );
        let mut f = ekf();
        let robot = Point::new(100.0, 100.0);
        let mut rng = SeedSplitter::new(3).stream("probe", 0);
        for _ in 0..2 {
            for &a in &[
                Point::new(92.0, 100.0),
                Point::new(108.0, 106.0),
                Point::new(100.0, 90.0),
            ] {
                let rssi = ch.sample_rssi(robot.distance_to(a), &mut rng);
                f.update_from_beacon(&table, a, rssi);
            }
        }
        assert!(f.estimate().distance_to(robot) < 10.0);
        assert_eq!(
            f.update_from_beacon(&table, robot, Dbm::new(30.0)),
            EkfUpdate::NoPdf
        );
    }
}
