//! The discretized position posterior.
//!
//! The paper's algorithm (Eqs. 1–3, after Sichitiu & Ramadurai) maintains a
//! probability distribution of the robot's position over the bounding
//! rectangle of the deployment area, multiplies in one constraint per
//! received beacon, renormalizes (Bayesian inference), and finally takes
//! the distribution's mean as the position estimate. Like every Bayesian /
//! Markov localization implementation, we discretize the area into a grid.

use serde::{Deserialize, Serialize};

use cocoa_net::calibration::RadialProfile;
use cocoa_net::geometry::{Area, Point};

use crate::kernel::{self, GridKernel, GridPrecision};

/// Grid discretization parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridConfig {
    /// The deployment area the posterior covers (paper Eq. 1's bounds).
    pub area: Area,
    /// Cell side length, metres. 2 m over the paper's 200 m × 200 m field
    /// gives a 100 × 100 grid; the resolution ablation bench sweeps this.
    pub resolution_m: f64,
}

impl GridConfig {
    /// Creates a config.
    ///
    /// # Panics
    ///
    /// Panics if the resolution is not strictly positive or exceeds the
    /// area's smaller side.
    pub fn new(area: Area, resolution_m: f64) -> Self {
        assert!(
            resolution_m > 0.0 && resolution_m.is_finite(),
            "resolution must be positive"
        );
        assert!(
            resolution_m <= area.width().min(area.height()),
            "resolution {resolution_m} m coarser than the area itself"
        );
        GridConfig { area, resolution_m }
    }
}

/// Outcome of multiplying a constraint into the posterior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintOutcome {
    /// The posterior was updated and renormalized.
    Applied,
    /// The constraint would have annihilated the posterior (total mass
    /// ~zero) — the update was skipped and the old posterior kept. This
    /// happens when a "bad beacon" (paper Section 4.3.1) contradicts all
    /// prior mass.
    Rejected,
}

/// A probability mass function over grid cells covering the area.
///
/// # Examples
///
/// ```
/// use cocoa_localization::grid::{GridConfig, PositionGrid};
/// use cocoa_net::geometry::{Area, Point};
///
/// let mut grid = PositionGrid::new(GridConfig::new(Area::square(200.0), 2.0));
/// // A uniform prior's mean is the area's centre.
/// let c = grid.mean();
/// assert!((c.x - 100.0).abs() < 1e-9 && (c.y - 100.0).abs() < 1e-9);
/// // Concentrate mass near (50, 50).
/// grid.apply_constraint(|p| (-(p.distance_to(Point::new(50.0, 50.0))).powi(2) / 50.0).exp());
/// assert!(grid.mean().distance_to(Point::new(50.0, 50.0)) < 2.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PositionGrid {
    config: GridConfig,
    nx: usize,
    ny: usize,
    /// Cell probabilities; row-major (`iy * nx + ix`), always summing to 1.
    cells: Vec<f64>,
    /// Cell-centre x coordinates, indexed by `ix`.
    #[serde(skip)]
    xs: Vec<f64>,
    /// Cell-centre y coordinates, indexed by `iy`.
    #[serde(skip)]
    ys: Vec<f64>,
    /// Reusable buffer for the unnormalized product during an update, so
    /// the per-beacon hot path allocates nothing.
    #[serde(skip)]
    scratch: Vec<f64>,
    /// Reusable buffer of per-column squared x-distances to the current
    /// constraint centre. In a fused multi-beacon pass it holds one row of
    /// squared x-distances per beacon, concatenated.
    #[serde(skip)]
    dx2: Vec<f64>,
    /// Reusable per-row buffer of pre-scaled profile coordinates (scalar
    /// reference path only — the lane kernels fuse this stage away).
    #[serde(skip)]
    row_t: Vec<f64>,
    /// f32 mirror of `dx2` for the half-precision kernel.
    #[serde(skip)]
    dx2f: Vec<f32>,
}

/// Sums with four independent accumulators so the reduction is not one
/// serial chain of additions (and can use SIMD adds). The rounding differs
/// from a left-to-right sum by O(n·ε) — irrelevant at the posterior's
/// tolerances.
fn sum_4lane(xs: &[f64]) -> f64 {
    let mut acc = [0.0f64; 4];
    let chunks = xs.chunks_exact(4);
    let rem = chunks.remainder();
    for c in chunks {
        acc[0] += c[0];
        acc[1] += c[1];
        acc[2] += c[2];
        acc[3] += c[3];
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + rem.iter().sum::<f64>()
}

/// Equality is over the posterior itself; scratch buffers and the derived
/// axis tables are excluded.
impl PartialEq for PositionGrid {
    fn eq(&self, other: &Self) -> bool {
        self.config == other.config
            && self.nx == other.nx
            && self.ny == other.ny
            && self.cells == other.cells
    }
}

impl PositionGrid {
    /// Creates a grid initialized to the uniform prior — "in the beginning,
    /// a robot is equally likely to be in any position" (paper Section 2.2).
    pub fn new(config: GridConfig) -> Self {
        let nx = (config.area.width() / config.resolution_m).ceil() as usize;
        let ny = (config.area.height() / config.resolution_m).ceil() as usize;
        let n = nx * ny;
        let r = config.resolution_m;
        let xs = (0..nx)
            .map(|ix| config.area.x_min + (ix as f64 + 0.5) * r)
            .collect();
        let ys = (0..ny)
            .map(|iy| config.area.y_min + (iy as f64 + 0.5) * r)
            .collect();
        PositionGrid {
            config,
            nx,
            ny,
            cells: vec![1.0 / n as f64; n],
            xs,
            ys,
            scratch: Vec::with_capacity(n),
            dx2: Vec::with_capacity(nx),
            row_t: Vec::with_capacity(nx),
            dx2f: Vec::new(),
        }
    }

    /// Grid width in cells.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid height in cells.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// The configuration.
    pub fn config(&self) -> &GridConfig {
        &self.config
    }

    /// Resets to the uniform prior.
    pub fn reset_uniform(&mut self) {
        let v = 1.0 / self.cells.len() as f64;
        self.cells.fill(v);
    }

    /// Centre of cell `(ix, iy)`.
    #[inline]
    pub fn cell_center(&self, ix: usize, iy: usize) -> Point {
        Point::new(self.xs[ix], self.ys[iy])
    }

    /// Commits the unnormalized product held in `scratch` (total mass
    /// `total`) to the posterior, or rejects it as degenerate.
    fn commit(&mut self, scratch: &[f64], total: f64) -> ConstraintOutcome {
        if !total.is_finite() || total <= f64::MIN_POSITIVE * self.cells.len() as f64 {
            return ConstraintOutcome::Rejected;
        }
        let inv_total = 1.0 / total;
        for (dst, &v) in self.cells.iter_mut().zip(scratch) {
            *dst = v * inv_total;
        }
        ConstraintOutcome::Applied
    }

    /// Multiplies `constraint(cell_center)` into every cell and
    /// renormalizes (paper Eq. 2).
    ///
    /// This is the generic (reference) path: it evaluates the closure at
    /// every cell centre. Constraints that depend on the cell only through
    /// its distance to a point should go through
    /// [`apply_radial_constraint`](Self::apply_radial_constraint).
    ///
    /// Returns [`ConstraintOutcome::Rejected`] — leaving the posterior
    /// untouched — if the product has (near-)zero total mass or is not
    /// finite.
    pub fn apply_constraint(&mut self, constraint: impl Fn(Point) -> f64) -> ConstraintOutcome {
        let mut scratch = std::mem::take(&mut self.scratch);
        Self::reset_scratch(&mut scratch, self.cells.len());
        let mut total = 0.0;
        for (iy, out) in scratch.chunks_exact_mut(self.nx).enumerate() {
            let y = self.ys[iy];
            let row = &self.cells[iy * self.nx..(iy + 1) * self.nx];
            for ((dst, &cell), &x) in out.iter_mut().zip(row).zip(&self.xs) {
                let v = cell * constraint(Point::new(x, y));
                *dst = v;
                total += v;
            }
        }
        let outcome = self.commit(&scratch, total);
        self.scratch = scratch;
        outcome
    }

    /// The one scratch-preparation idiom shared by every update path:
    /// `clear` + `resize` (zero-fill), which the allocator-free hot paths
    /// amortize to a `memset` after the first call.
    fn reset_scratch(scratch: &mut Vec<f64>, n: usize) {
        scratch.clear();
        scratch.resize(n, 0.0);
    }

    /// Scratch preparation for the lane-kernel paths, which overwrite every
    /// element (their row loops tile the buffer exactly): only the length
    /// is established; no zero-fill pass is paid.
    fn ensure_scratch(scratch: &mut Vec<f64>, n: usize) {
        if scratch.len() != n {
            Self::reset_scratch(scratch, n);
        }
    }

    /// Multiplies a radial constraint — `profile.density(‖cell − center‖)`
    /// — into every cell and renormalizes.
    ///
    /// The fast path of the Bayesian update: squared x-offsets are computed
    /// once per column, squared y-offsets once per row, and the density
    /// comes from a pre-sampled 1-D [`RadialProfile`] lookup instead of a
    /// per-cell `exp`/histogram evaluation. All buffers are persistent, so
    /// a beacon update allocates nothing.
    ///
    /// Equivalent (within float rounding) to
    /// `apply_constraint(|p| profile.density(p.distance_to(center)))`,
    /// including the [`ConstraintOutcome::Rejected`] behaviour.
    pub fn apply_radial_constraint(
        &mut self,
        center: Point,
        profile: &RadialProfile,
    ) -> ConstraintOutcome {
        self.apply_radial_constraint_with(center, profile, GridKernel::Simd, GridPrecision::F64)
    }

    /// [`apply_radial_constraint`](Self::apply_radial_constraint) with an
    /// explicit kernel/precision selection.
    ///
    /// `Scalar` runs the reference two-stage loop; `Simd`+`F64` runs the
    /// lane-packed kernel, bit-identical to `Scalar` (see
    /// [`crate::kernel`]); `Simd`+`F32` runs the half-precision
    /// lanes, within [`kernel::F32_KERNEL_REL_BOUND`] per cell. A `Scalar`
    /// kernel ignores the precision knob — scalar is always the f64
    /// reference.
    pub fn apply_radial_constraint_with(
        &mut self,
        center: Point,
        profile: &RadialProfile,
        kern: GridKernel,
        precision: GridPrecision,
    ) -> ConstraintOutcome {
        let mut scratch = std::mem::take(&mut self.scratch);
        let total = match (kern, precision) {
            (GridKernel::Scalar, _) => {
                Self::reset_scratch(&mut scratch, self.cells.len());
                self.radial_rows_scalar(&mut scratch, center, profile);
                sum_4lane(&scratch)
            }
            (GridKernel::Simd, GridPrecision::F64) => {
                Self::ensure_scratch(&mut scratch, self.cells.len());
                self.radial_rows_simd(&mut scratch, center, profile)
            }
            (GridKernel::Simd, GridPrecision::F32) => {
                Self::ensure_scratch(&mut scratch, self.cells.len());
                self.radial_rows_f32(&mut scratch, center, profile);
                sum_4lane(&scratch)
            }
        };
        let outcome = self.commit(&scratch, total);
        self.scratch = scratch;
        outcome
    }

    /// Fills `dx2` with per-column squared x-distances to `cx`.
    fn fill_dx2(dx2: &mut Vec<f64>, xs: &[f64], cx: f64) {
        dx2.clear();
        dx2.extend(xs.iter().map(|&x| {
            let dx = x - cx;
            dx * dx
        }));
    }

    /// The reference scalar radial path (pre-kernel behaviour): a
    /// vectorizable distance stage into `row_t`, then a gather-bound
    /// interpolation stage. Per-profile invariants (`inv_step`) are hoisted
    /// out of the row loop.
    fn radial_rows_scalar(&mut self, scratch: &mut [f64], center: Point, profile: &RadialProfile) {
        let mut dx2 = std::mem::take(&mut self.dx2);
        let mut row_t = std::mem::take(&mut self.row_t);
        Self::fill_dx2(&mut dx2, &self.xs, center.x);
        row_t.clear();
        row_t.resize(self.nx, 0.0);
        let inv_step = profile.inv_step();
        for (iy, out) in scratch.chunks_exact_mut(self.nx).enumerate() {
            let dy = self.ys[iy] - center.y;
            let dy2 = dy * dy;
            let row = &self.cells[iy * self.nx..(iy + 1) * self.nx];
            for (t, &dx2) in row_t.iter_mut().zip(&dx2) {
                *t = (dx2 + dy2).sqrt() * inv_step;
            }
            for ((dst, &cell), &t) in out.iter_mut().zip(row).zip(&row_t) {
                *dst = cell * profile.density_scaled(t);
            }
        }
        self.dx2 = dx2;
        self.row_t = row_t;
    }

    /// The lane-packed f64 path: the fully vectorized gather kernel row by
    /// row, then the flat 4-lane total reduction. Returns the unnormalized
    /// total. Bit-identical to
    /// [`radial_rows_scalar`](Self::radial_rows_scalar) followed by the
    /// same reduction (see [`kernel`] for the contract).
    fn radial_rows_simd(
        &mut self,
        scratch: &mut [f64],
        center: Point,
        profile: &RadialProfile,
    ) -> f64 {
        let mut dx2 = std::mem::take(&mut self.dx2);
        Self::fill_dx2(&mut dx2, &self.xs, center.x);
        let inv_step = profile.inv_step();
        let table = profile.lane_table();
        for (iy, out) in scratch.chunks_exact_mut(self.nx).enumerate() {
            let dy = self.ys[iy] - center.y;
            let row = &self.cells[iy * self.nx..(iy + 1) * self.nx];
            kernel::radial_product_row(out, row, &dx2, dy * dy, inv_step, table);
        }
        self.dx2 = dx2;
        sum_4lane(scratch)
    }

    /// The half-precision path: distances and interpolation in f32 lanes,
    /// widened back to f64 only for the posterior product.
    fn radial_rows_f32(&mut self, scratch: &mut [f64], center: Point, profile: &RadialProfile) {
        let mut dx2f = std::mem::take(&mut self.dx2f);
        dx2f.clear();
        dx2f.extend(self.xs.iter().map(|&x| {
            let dx = (x - center.x) as f32;
            dx * dx
        }));
        let inv_step = profile.inv_step_f32();
        let table = profile.lane_table_f32();
        for (iy, out) in scratch.chunks_exact_mut(self.nx).enumerate() {
            let dy = (self.ys[iy] - center.y) as f32;
            let row = &self.cells[iy * self.nx..(iy + 1) * self.nx];
            kernel::radial_product_row_f32(out, row, &dx2f, dy * dy, inv_step, table);
        }
        self.dx2f = dx2f;
    }

    /// Multiplies a whole window's worth of radial constraints into the
    /// posterior in **one** pass and renormalizes **once**.
    ///
    /// Where the sequential path loads and stores the posterior (and
    /// renormalizes) once per beacon, the fused path seeds each scratch row
    /// from the posterior with the first beacon's kernel and folds the
    /// remaining beacons in place while the row is hot in cache. Because
    /// renormalization is a scalar rescale, fusing k constraints and
    /// renormalizing once is mathematically identical to k
    /// multiply-renormalize rounds — only float rounding differs.
    ///
    /// Rejection is batch-level: if the *combined* product annihilates the
    /// posterior the whole batch is rejected and the posterior left
    /// untouched (with floored profiles this requires a non-finite value,
    /// same as the sequential path in practice).
    ///
    /// An empty batch is a no-op `Applied`. The `F32` precision variant
    /// uses the f32 kernel for every fold.
    pub fn apply_fused_radial_constraints(
        &mut self,
        constraints: &[(Point, &RadialProfile)],
        precision: GridPrecision,
    ) -> ConstraintOutcome {
        if constraints.is_empty() {
            return ConstraintOutcome::Applied;
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        // The first beacon's kernel seeds every scratch row from the
        // posterior, so no zero-fill is needed.
        Self::ensure_scratch(&mut scratch, self.cells.len());
        match precision {
            GridPrecision::F64 => {
                // One dx² row per beacon, concatenated into the dx2 buffer.
                let mut dx2 = std::mem::take(&mut self.dx2);
                dx2.clear();
                for &(center, _) in constraints {
                    for &x in &self.xs {
                        let dx = x - center.x;
                        dx2.push(dx * dx);
                    }
                }
                for (iy, out) in scratch.chunks_exact_mut(self.nx).enumerate() {
                    let y = self.ys[iy];
                    let row = &self.cells[iy * self.nx..(iy + 1) * self.nx];
                    for (b, &(center, profile)) in constraints.iter().enumerate() {
                        let dy = y - center.y;
                        let bdx2 = &dx2[b * self.nx..(b + 1) * self.nx];
                        if b == 0 {
                            kernel::radial_product_row(
                                out,
                                row,
                                bdx2,
                                dy * dy,
                                profile.inv_step(),
                                profile.lane_table(),
                            );
                        } else {
                            kernel::radial_product_row_mul(
                                out,
                                bdx2,
                                dy * dy,
                                profile.inv_step(),
                                profile.lane_table(),
                            );
                        }
                    }
                }
                self.dx2 = dx2;
            }
            GridPrecision::F32 => {
                let mut dx2f = std::mem::take(&mut self.dx2f);
                dx2f.clear();
                for &(center, _) in constraints {
                    for &x in &self.xs {
                        let dx = (x - center.x) as f32;
                        dx2f.push(dx * dx);
                    }
                }
                for (iy, out) in scratch.chunks_exact_mut(self.nx).enumerate() {
                    let y = self.ys[iy];
                    let row = &self.cells[iy * self.nx..(iy + 1) * self.nx];
                    for (b, &(center, profile)) in constraints.iter().enumerate() {
                        let dy = (y - center.y) as f32;
                        let bdx2 = &dx2f[b * self.nx..(b + 1) * self.nx];
                        if b == 0 {
                            kernel::radial_product_row_f32(
                                out,
                                row,
                                bdx2,
                                dy * dy,
                                profile.inv_step_f32(),
                                profile.lane_table_f32(),
                            );
                        } else {
                            kernel::radial_product_row_mul_f32(
                                out,
                                bdx2,
                                dy * dy,
                                profile.inv_step_f32(),
                                profile.lane_table_f32(),
                            );
                        }
                    }
                }
                self.dx2f = dx2f;
            }
        }
        let total = sum_4lane(&scratch);
        let outcome = self.commit(&scratch, total);
        self.scratch = scratch;
        outcome
    }

    /// The posterior mean (paper Eq. 3) — the position estimate.
    pub fn mean(&self) -> Point {
        let mut x = 0.0;
        let mut y = 0.0;
        for iy in 0..self.ny {
            for ix in 0..self.nx {
                let p = self.cells[iy * self.nx + ix];
                if p > 0.0 {
                    let c = self.cell_center(ix, iy);
                    x += p * c.x;
                    y += p * c.y;
                }
            }
        }
        Point::new(x, y)
    }

    /// The centre of the highest-probability cell (MAP estimate).
    pub fn map_estimate(&self) -> Point {
        let (idx, _) =
            self.cells
                .iter()
                .enumerate()
                .fold((0, f64::NEG_INFINITY), |best, (i, &v)| {
                    if v > best.1 {
                        (i, v)
                    } else {
                        best
                    }
                });
        self.cell_center(idx % self.nx, idx / self.nx)
    }

    /// Number of cells in the grid.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// The maximum possible posterior entropy, nats — attained by the
    /// uniform prior. The entropy watchdog compares against this.
    pub fn max_entropy(&self) -> f64 {
        (self.cells.len() as f64).ln()
    }

    /// Shannon entropy of the posterior, nats. The uniform prior maximizes
    /// it; a confident fix approaches zero.
    pub fn entropy(&self) -> f64 {
        -self
            .cells
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| p * p.ln())
            .sum::<f64>()
    }

    /// Total probability mass (1.0 up to rounding; exposed for tests).
    pub fn total_mass(&self) -> f64 {
        self.cells.iter().sum()
    }

    /// The raw cell probabilities, row-major (`iy * nx + ix`).
    pub fn cells(&self) -> &[f64] {
        &self.cells
    }

    /// Overwrites the posterior with checkpointed cell probabilities.
    ///
    /// # Panics
    ///
    /// Panics if `cells` does not match this grid's cell count.
    pub fn restore_cells(&mut self, cells: &[f64]) {
        assert_eq!(
            cells.len(),
            self.cells.len(),
            "checkpointed posterior has wrong cell count"
        );
        self.cells.copy_from_slice(cells);
    }

    /// Probability of the cell containing `p` (0 outside the area).
    pub fn density_at(&self, p: Point) -> f64 {
        if !self.config.area.contains(p) {
            return 0.0;
        }
        let r = self.config.resolution_m;
        let ix = (((p.x - self.config.area.x_min) / r) as usize).min(self.nx - 1);
        let iy = (((p.y - self.config.area.y_min) / r) as usize).min(self.ny - 1);
        self.cells[iy * self.nx + ix]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(res: f64) -> PositionGrid {
        PositionGrid::new(GridConfig::new(Area::square(200.0), res))
    }

    #[test]
    fn uniform_prior_sums_to_one_and_centres() {
        let g = grid(2.0);
        assert_eq!(g.nx(), 100);
        assert_eq!(g.ny(), 100);
        assert!((g.total_mass() - 1.0).abs() < 1e-9);
        assert!(g.mean().distance_to(Point::new(100.0, 100.0)) < 1e-9);
    }

    #[test]
    fn constraint_concentrates_mass() {
        let mut g = grid(2.0);
        let target = Point::new(60.0, 140.0);
        let before = g.entropy();
        let out = g.apply_constraint(|p| (-(p.distance_to(target) / 10.0).powi(2)).exp());
        assert_eq!(out, ConstraintOutcome::Applied);
        assert!((g.total_mass() - 1.0).abs() < 1e-9, "renormalized");
        assert!(g.entropy() < before, "entropy decreased");
        assert!(g.mean().distance_to(target) < 2.0);
        assert!(g.map_estimate().distance_to(target) < 2.0);
    }

    #[test]
    fn repeated_constraints_sharpen_the_posterior() {
        let mut g = grid(2.0);
        let target = Point::new(100.0, 100.0);
        let mut last_entropy = g.entropy();
        for _ in 0..3 {
            g.apply_constraint(|p| (-(p.distance_to(target) / 20.0).powi(2)).exp());
            let e = g.entropy();
            assert!(e < last_entropy);
            last_entropy = e;
        }
    }

    #[test]
    fn annihilating_constraint_is_rejected() {
        let mut g = grid(2.0);
        let before = g.clone();
        assert_eq!(g.apply_constraint(|_| 0.0), ConstraintOutcome::Rejected);
        assert_eq!(g, before, "posterior untouched after rejection");
        assert_eq!(
            g.apply_constraint(|_| f64::NAN),
            ConstraintOutcome::Rejected
        );
        assert_eq!(g, before);
    }

    #[test]
    fn reset_restores_uniform() {
        let mut g = grid(2.0);
        g.apply_constraint(|p| p.x);
        g.reset_uniform();
        assert!(g.mean().distance_to(Point::new(100.0, 100.0)) < 1e-9);
        let max_entropy = (g.nx() as f64 * g.ny() as f64).ln();
        assert!((g.entropy() - max_entropy).abs() < 1e-9);
        assert!((g.max_entropy() - max_entropy).abs() < 1e-12);
        assert_eq!(g.num_cells(), g.nx() * g.ny());
    }

    #[test]
    fn cell_centers_tile_the_area() {
        let g = grid(2.0);
        let first = g.cell_center(0, 0);
        assert_eq!(first, Point::new(1.0, 1.0));
        let last = g.cell_center(g.nx() - 1, g.ny() - 1);
        assert_eq!(last, Point::new(199.0, 199.0));
    }

    #[test]
    fn density_at_reads_back_cells() {
        let mut g = grid(2.0);
        let target = Point::new(50.0, 50.0);
        g.apply_constraint(|p| (-(p.distance_to(target) / 5.0).powi(2)).exp());
        assert!(g.density_at(target) > g.density_at(Point::new(150.0, 150.0)));
        assert_eq!(g.density_at(Point::new(-1.0, 0.0)), 0.0);
    }

    #[test]
    fn intersection_of_two_ring_constraints_localizes() {
        // Two beacons at known positions, each constraining distance:
        // the posterior mean should land near an intersection point.
        let mut g = grid(1.0);
        let b1 = Point::new(80.0, 100.0);
        let b2 = Point::new(120.0, 100.0);
        let ring = |center: Point, radius: f64| {
            move |p: Point| {
                let d = p.distance_to(center);
                (-((d - radius) / 3.0).powi(2)).exp()
            }
        };
        g.apply_constraint(ring(b1, 25.0));
        g.apply_constraint(ring(b2, 25.0));
        // Intersections are near (100, 100 ± 15); a third beacon breaks the tie.
        let b3 = Point::new(100.0, 130.0);
        g.apply_constraint(ring(b3, 15.0));
        let est = g.mean();
        let expected = Point::new(100.0, 115.0);
        assert!(
            est.distance_to(expected) < 5.0,
            "estimate {est} vs expected {expected}"
        );
    }

    #[test]
    #[should_panic(expected = "resolution")]
    fn zero_resolution_rejected() {
        let _ = GridConfig::new(Area::square(200.0), 0.0);
    }

    #[test]
    fn radial_constraint_matches_generic_per_cell() {
        use cocoa_net::calibration::RadialProfile;
        let center = Point::new(63.0, 141.0);
        let profile = RadialProfile::from_fn(0.25, 300.0, |d| (-((d - 30.0) / 8.0).powi(2)).exp())
            .offset(1e-6);
        let mut generic = grid(2.0);
        let mut radial = grid(2.0);
        // Two rounds so the scratch-buffer reuse is also exercised.
        for _ in 0..2 {
            let a = generic.apply_constraint(|p| profile.density(p.distance_to(center)));
            let b = radial.apply_radial_constraint(center, &profile);
            assert_eq!(a, b);
            assert_eq!(a, ConstraintOutcome::Applied);
            for iy in 0..generic.ny() {
                for ix in 0..generic.nx() {
                    let pa = generic.density_at(generic.cell_center(ix, iy));
                    let pb = radial.density_at(radial.cell_center(ix, iy));
                    assert!(
                        (pa - pb).abs() < 1e-9,
                        "cell ({ix},{iy}): generic {pa} vs radial {pb}"
                    );
                }
            }
        }
        assert!((radial.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn radial_rejection_leaves_posterior_untouched() {
        use cocoa_net::calibration::RadialProfile;
        let mut g = grid(2.0);
        let target = Point::new(60.0, 140.0);
        g.apply_constraint(|p| (-(p.distance_to(target) / 10.0).powi(2)).exp());
        let before = g.clone();
        let zero = RadialProfile::from_fn(1.0, 300.0, |_| 0.0);
        assert_eq!(
            g.apply_radial_constraint(target, &zero),
            ConstraintOutcome::Rejected
        );
        assert_eq!(g, before, "posterior untouched after radial rejection");
        let nan = RadialProfile::from_fn(1.0, 300.0, |_| f64::NAN);
        assert_eq!(
            g.apply_radial_constraint(target, &nan),
            ConstraintOutcome::Rejected
        );
        assert_eq!(g, before);
    }

    #[test]
    fn equality_ignores_scratch_state() {
        use cocoa_net::calibration::RadialProfile;
        let fresh = grid(2.0);
        let mut used = grid(2.0);
        let zero = RadialProfile::from_fn(1.0, 300.0, |_| 0.0);
        // A rejected update leaves the posterior alone but dirties scratch.
        used.apply_radial_constraint(Point::new(10.0, 10.0), &zero);
        assert_eq!(fresh, used);
    }
}
