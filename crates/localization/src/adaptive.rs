//! Coarse-to-fine adaptive position posterior.
//!
//! A windowed Bayesian update spends almost all of its time multiplying
//! constraints into cells that hold (and will keep holding) negligible
//! mass: after two or three beacons the posterior concentrates in a small
//! neighbourhood, and at window start it is uniform — where coarse cells
//! represent it exactly. [`AdaptiveGrid`] exploits both ends: the posterior
//! is stored as a lattice of coarse **tiles** (each covering up to
//! `factor × factor` fine cells), a tile is **refined** to per-fine-cell
//! resolution only once its mass exceeds `refine_factor ×` its uniform
//! share, and refined tiles whose mass collapses below the inverse
//! threshold are **coarsened** back. Constraints are evaluated once per
//! coarse tile (at its centroid) and per fine cell only inside refined
//! tiles, which is where the ≥ 5× cells-touched reduction in
//! `BENCH_grid.json` comes from.
//!
//! # Invariants
//!
//! - **Mass conservation**: refining distributes a tile's mass uniformly
//!   over its fine cells and coarsening sums them back, so total mass is
//!   preserved to rounding (pinned at 1e-9 by proptest) across any
//!   refine/coarsen sequence; every committed update renormalizes to 1.
//! - **Uniform-prior exactness**: `reset_uniform` gives each tile mass
//!   proportional to its fine-cell count, which equals the dense uniform
//!   prior exactly (edge tiles are smaller and get proportionally less).
//! - **Rejection semantics**: like [`PositionGrid`], a constraint whose
//!   product annihilates the posterior is rejected leaving it untouched.
//!
//! [`PositionGrid`]: crate::grid::PositionGrid

use serde::{Deserialize, Serialize};

use cocoa_net::calibration::RadialProfile;
use cocoa_net::geometry::Point;

use crate::grid::{ConstraintOutcome, GridConfig};

/// One coarse tile of the adaptive posterior.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Tile {
    /// Total mass of the tile, represented at coarse resolution.
    Coarse(f64),
    /// Per-fine-cell masses, row-major within the tile.
    Refined(Vec<f64>),
}

/// Per-operation cost accounting of an adaptive update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdaptiveOpStats {
    /// Cells (coarse tiles count once, refined tiles per fine cell) whose
    /// constraint weight was evaluated.
    pub cells_touched: u64,
    /// Fine cells materialized by refinement during this operation.
    pub cells_refined: u64,
}

/// The coarse-to-fine adaptive posterior. Mirrors the query surface of
/// [`PositionGrid`](crate::grid::PositionGrid) (mean / entropy / mass) so
/// the Bayesian layer can swap it in behind the `adaptive` pipeline knob.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaptiveGrid {
    config: GridConfig,
    /// Fine lattice dimensions (identical to the dense grid's).
    nx: usize,
    ny: usize,
    /// Tile lattice dimensions.
    tx: usize,
    ty: usize,
    /// Fine cells per tile side (edge tiles may be smaller).
    factor: usize,
    /// Refinement threshold multiplier (> 1).
    refine_factor: f64,
    /// Tiles, row-major (`tyi * tx + txi`).
    tiles: Vec<Tile>,
    /// Fine-cell-centre axes.
    #[serde(skip)]
    xs: Vec<f64>,
    #[serde(skip)]
    ys: Vec<f64>,
    /// Reusable unnormalized-product buffer (per-tile slots, sequential).
    #[serde(skip)]
    scratch: Vec<f64>,
}

/// Equality is over the posterior (config + tile state); scratch and the
/// derived axes are excluded.
impl PartialEq for AdaptiveGrid {
    fn eq(&self, other: &Self) -> bool {
        self.config == other.config
            && self.factor == other.factor
            && self.refine_factor == other.refine_factor
            && self.tiles == other.tiles
    }
}

impl AdaptiveGrid {
    /// Creates an adaptive grid at the uniform prior.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero or `refine_factor` is not > 1 and finite.
    pub fn new(config: GridConfig, factor: u32, refine_factor: f64) -> Self {
        assert!(factor >= 1, "coarse factor must be at least 1");
        assert!(
            refine_factor.is_finite() && refine_factor > 1.0,
            "refine factor must exceed 1"
        );
        let nx = (config.area.width() / config.resolution_m).ceil() as usize;
        let ny = (config.area.height() / config.resolution_m).ceil() as usize;
        let factor = factor as usize;
        let tx = nx.div_ceil(factor);
        let ty = ny.div_ceil(factor);
        let r = config.resolution_m;
        let xs = (0..nx)
            .map(|ix| config.area.x_min + (ix as f64 + 0.5) * r)
            .collect();
        let ys = (0..ny)
            .map(|iy| config.area.y_min + (iy as f64 + 0.5) * r)
            .collect();
        let mut g = AdaptiveGrid {
            config,
            nx,
            ny,
            tx,
            ty,
            factor,
            refine_factor,
            tiles: vec![Tile::Coarse(0.0); tx * ty],
            xs,
            ys,
            scratch: Vec::new(),
        };
        g.reset_uniform();
        g
    }

    /// The configuration of the underlying fine lattice.
    pub fn config(&self) -> &GridConfig {
        &self.config
    }

    /// Number of fine cells the posterior resolves to when fully refined.
    pub fn num_cells(&self) -> usize {
        self.nx * self.ny
    }

    /// Fine-cell ranges covered by tile `(txi, tyi)`.
    #[inline]
    fn tile_span(
        &self,
        txi: usize,
        tyi: usize,
    ) -> (std::ops::Range<usize>, std::ops::Range<usize>) {
        let x0 = txi * self.factor;
        let y0 = tyi * self.factor;
        (
            x0..(x0 + self.factor).min(self.nx),
            y0..(y0 + self.factor).min(self.ny),
        )
    }

    /// Fine-cell count of tile `(txi, tyi)` (edge tiles are smaller).
    #[inline]
    fn tile_cells(&self, txi: usize, tyi: usize) -> usize {
        let (sx, sy) = self.tile_span(txi, tyi);
        sx.len() * sy.len()
    }

    /// Centroid of tile `(txi, tyi)` — the mean of its fine-cell centres.
    fn tile_centroid(&self, txi: usize, tyi: usize) -> Point {
        let (sx, sy) = self.tile_span(txi, tyi);
        let cx = (self.xs[sx.start] + self.xs[sx.end - 1]) * 0.5;
        let cy = (self.ys[sy.start] + self.ys[sy.end - 1]) * 0.5;
        Point::new(cx, cy)
    }

    /// Resets to the uniform prior — all tiles coarse, each holding its
    /// fine-cell count's share of the mass (exactly the dense uniform
    /// prior, tile-aggregated).
    pub fn reset_uniform(&mut self) {
        let per_cell = 1.0 / (self.nx * self.ny) as f64;
        for tyi in 0..self.ty {
            for txi in 0..self.tx {
                self.tiles[tyi * self.tx + txi] =
                    Tile::Coarse(self.tile_cells(txi, tyi) as f64 * per_cell);
            }
        }
    }

    /// Multiplies a radial constraint into the posterior, renormalizes, and
    /// adapts the resolution: refined where mass concentrated, coarsened
    /// where it drained. Coarse tiles evaluate the profile once at their
    /// centroid; refined tiles per fine cell.
    pub fn apply_radial_constraint(
        &mut self,
        center: Point,
        profile: &RadialProfile,
    ) -> (ConstraintOutcome, AdaptiveOpStats) {
        let mut stats = AdaptiveOpStats::default();
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        let inv_step = profile.inv_step();
        let table = profile.lane_table();
        let mut total = 0.0;
        // Pass 1: unnormalized products into per-tile scratch slots.
        for tyi in 0..self.ty {
            for txi in 0..self.tx {
                match &self.tiles[tyi * self.tx + txi] {
                    Tile::Coarse(m) => {
                        let c = self.tile_centroid(txi, tyi);
                        let t = c.distance_to(center) * inv_step;
                        let v = m * crate::kernel::lerp_table(table, t);
                        scratch.push(v);
                        total += v;
                        stats.cells_touched += 1;
                    }
                    Tile::Refined(cells) => {
                        let (sx, sy) = self.tile_span(txi, tyi);
                        let mut k = 0;
                        for iy in sy {
                            let dy = self.ys[iy] - center.y;
                            let dy2 = dy * dy;
                            for ix in sx.clone() {
                                let dx = self.xs[ix] - center.x;
                                let t = (dx * dx + dy2).sqrt() * inv_step;
                                let v = cells[k] * crate::kernel::lerp_table(table, t);
                                scratch.push(v);
                                total += v;
                                k += 1;
                            }
                        }
                        stats.cells_touched += cells.len() as u64;
                    }
                }
            }
        }
        if !total.is_finite() || total <= f64::MIN_POSITIVE * (self.nx * self.ny) as f64 {
            self.scratch = scratch;
            return (ConstraintOutcome::Rejected, stats);
        }
        // Pass 2: commit normalized masses and adapt resolution.
        let inv_total = 1.0 / total;
        let uniform_per_cell = 1.0 / (self.nx * self.ny) as f64;
        let mut slot = 0;
        for tyi in 0..self.ty {
            for txi in 0..self.tx {
                let n = self.tile_cells(txi, tyi);
                let uniform_mass = n as f64 * uniform_per_cell;
                let tile = &mut self.tiles[tyi * self.tx + txi];
                match tile {
                    Tile::Coarse(m) => {
                        let mass = scratch[slot] * inv_total;
                        slot += 1;
                        if n > 1 && mass > self.refine_factor * uniform_mass {
                            // Concentration: materialize fine cells with the
                            // mass split uniformly (mass- and centroid-
                            // conserving).
                            *tile = Tile::Refined(vec![mass / n as f64; n]);
                            stats.cells_refined += n as u64;
                        } else {
                            *m = mass;
                        }
                    }
                    Tile::Refined(cells) => {
                        let mut mass = 0.0;
                        for c in cells.iter_mut() {
                            *c = scratch[slot] * inv_total;
                            slot += 1;
                            mass += *c;
                        }
                        if mass < uniform_mass / self.refine_factor {
                            // Drained below interest: collapse back.
                            *tile = Tile::Coarse(mass);
                        }
                    }
                }
            }
        }
        self.scratch = scratch;
        (ConstraintOutcome::Applied, stats)
    }

    /// The posterior mean — coarse tiles contribute their mass at the tile
    /// centroid, refined tiles per fine cell.
    pub fn mean(&self) -> Point {
        let mut x = 0.0;
        let mut y = 0.0;
        for tyi in 0..self.ty {
            for txi in 0..self.tx {
                match &self.tiles[tyi * self.tx + txi] {
                    Tile::Coarse(m) => {
                        if *m > 0.0 {
                            let c = self.tile_centroid(txi, tyi);
                            x += m * c.x;
                            y += m * c.y;
                        }
                    }
                    Tile::Refined(cells) => {
                        let (sx, sy) = self.tile_span(txi, tyi);
                        let mut k = 0;
                        for iy in sy {
                            for ix in sx.clone() {
                                let p = cells[k];
                                if p > 0.0 {
                                    x += p * self.xs[ix];
                                    y += p * self.ys[iy];
                                }
                                k += 1;
                            }
                        }
                    }
                }
            }
        }
        Point::new(x, y)
    }

    /// Shannon entropy, nats, of the implied fine-lattice distribution (a
    /// coarse tile's mass counts as spread uniformly over its cells), so it
    /// is directly comparable to the dense grid's entropy and maximized at
    /// [`max_entropy`](Self::max_entropy) by the uniform prior.
    pub fn entropy(&self) -> f64 {
        let mut h = 0.0;
        for tyi in 0..self.ty {
            for txi in 0..self.tx {
                match &self.tiles[tyi * self.tx + txi] {
                    Tile::Coarse(m) => {
                        if *m > 0.0 {
                            let n = self.tile_cells(txi, tyi) as f64;
                            h -= m * (m / n).ln();
                        }
                    }
                    Tile::Refined(cells) => {
                        h -= cells
                            .iter()
                            .filter(|&&p| p > 0.0)
                            .map(|&p| p * p.ln())
                            .sum::<f64>();
                    }
                }
            }
        }
        h
    }

    /// The maximum possible entropy — `ln` of the fine cell count, same
    /// scale as the dense grid's.
    pub fn max_entropy(&self) -> f64 {
        ((self.nx * self.ny) as f64).ln()
    }

    /// Total probability mass (1.0 up to rounding; exposed for tests).
    pub fn total_mass(&self) -> f64 {
        self.tiles
            .iter()
            .map(|t| match t {
                Tile::Coarse(m) => *m,
                Tile::Refined(cells) => cells.iter().sum(),
            })
            .sum()
    }

    /// Implied per-fine-cell probability at `p` (0 outside the area).
    pub fn density_at(&self, p: Point) -> f64 {
        if !self.config.area.contains(p) {
            return 0.0;
        }
        let r = self.config.resolution_m;
        let ix = (((p.x - self.config.area.x_min) / r) as usize).min(self.nx - 1);
        let iy = (((p.y - self.config.area.y_min) / r) as usize).min(self.ny - 1);
        let (txi, tyi) = (ix / self.factor, iy / self.factor);
        match &self.tiles[tyi * self.tx + txi] {
            Tile::Coarse(m) => m / self.tile_cells(txi, tyi) as f64,
            Tile::Refined(cells) => {
                let (sx, _) = self.tile_span(txi, tyi);
                cells[(iy % self.factor) * sx.len() + (ix % self.factor)]
            }
        }
    }

    /// Number of currently refined tiles (exposed for tests and telemetry).
    pub fn refined_tiles(&self) -> usize {
        self.tiles
            .iter()
            .filter(|t| matches!(t, Tile::Refined(_)))
            .count()
    }

    /// The raw tile state, row-major — the unit of snapshot persistence.
    pub fn tiles(&self) -> &[Tile] {
        &self.tiles
    }

    /// Restores checkpointed tile state.
    ///
    /// # Panics
    ///
    /// Panics if the tile count or any refined tile's cell count does not
    /// match this grid's layout.
    pub fn restore_tiles(&mut self, tiles: Vec<Tile>) {
        assert_eq!(
            tiles.len(),
            self.tiles.len(),
            "checkpointed tile count mismatch"
        );
        for (i, t) in tiles.iter().enumerate() {
            if let Tile::Refined(cells) = t {
                let (txi, tyi) = (i % self.tx, i / self.tx);
                assert_eq!(
                    cells.len(),
                    self.tile_cells(txi, tyi),
                    "checkpointed tile {i} has wrong cell count"
                );
            }
        }
        self.tiles = tiles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocoa_net::geometry::Area;

    fn profile(mean: f64, sigma: f64) -> RadialProfile {
        RadialProfile::from_fn(0.25, 300.0, move |d| (-((d - mean) / sigma).powi(2)).exp())
            .offset(1e-6)
    }

    fn grid() -> AdaptiveGrid {
        AdaptiveGrid::new(GridConfig::new(Area::square(200.0), 2.0), 4, 2.0)
    }

    #[test]
    fn uniform_prior_matches_dense_statistics() {
        let g = grid();
        assert!((g.total_mass() - 1.0).abs() < 1e-9);
        assert!(g.mean().distance_to(Point::new(100.0, 100.0)) < 1e-9);
        assert!((g.entropy() - g.max_entropy()).abs() < 1e-9);
        assert_eq!(g.refined_tiles(), 0);
        assert_eq!(g.num_cells(), 100 * 100);
    }

    #[test]
    fn constraints_concentrate_refine_and_conserve_mass() {
        let mut g = grid();
        let b1 = Point::new(80.0, 100.0);
        let b2 = Point::new(120.0, 100.0);
        let b3 = Point::new(100.0, 130.0);
        let mut touched = 0;
        for (b, d) in [(b1, 25.0), (b2, 25.0), (b3, 15.0)] {
            let (out, stats) = g.apply_radial_constraint(b, &profile(d, 3.0));
            assert_eq!(out, ConstraintOutcome::Applied);
            touched += stats.cells_touched;
            assert!((g.total_mass() - 1.0).abs() < 1e-9);
        }
        assert!(
            g.refined_tiles() > 0,
            "mass concentration triggered refinement"
        );
        // The three rings intersect near (100, 115) — same fixture as the
        // dense-grid test, which localizes within 5 m there.
        assert!(g.mean().distance_to(Point::new(100.0, 115.0)) < 6.0);
        // Far fewer evaluations than three dense passes.
        assert!(touched < 3 * g.num_cells() as u64 / 2, "touched {touched}");
    }

    #[test]
    fn rejection_leaves_posterior_untouched() {
        let mut g = grid();
        g.apply_radial_constraint(Point::new(50.0, 50.0), &profile(20.0, 5.0));
        let before = g.clone();
        let zero = RadialProfile::from_fn(1.0, 300.0, |_| 0.0);
        let (out, _) = g.apply_radial_constraint(Point::new(50.0, 50.0), &zero);
        assert_eq!(out, ConstraintOutcome::Rejected);
        assert_eq!(g, before);
        let nan = RadialProfile::from_fn(1.0, 300.0, |_| f64::NAN);
        let (out, _) = g.apply_radial_constraint(Point::new(50.0, 50.0), &nan);
        assert_eq!(out, ConstraintOutcome::Rejected);
        assert_eq!(g, before);
    }

    #[test]
    fn drained_tiles_coarsen_back_and_reset_restores_uniform() {
        let mut g = grid();
        let p = profile(30.0, 4.0);
        let center = Point::new(60.0, 60.0);
        for _ in 0..4 {
            g.apply_radial_constraint(center, &p);
        }
        let refined_peak = g.refined_tiles();
        assert!(refined_peak > 0);
        // Pull the mass elsewhere; the old neighbourhood drains and coarsens.
        let elsewhere = profile(10.0, 3.0);
        for _ in 0..4 {
            g.apply_radial_constraint(Point::new(160.0, 160.0), &elsewhere);
        }
        assert!((g.total_mass() - 1.0).abs() < 1e-9);
        g.reset_uniform();
        assert_eq!(g.refined_tiles(), 0);
        assert!((g.entropy() - g.max_entropy()).abs() < 1e-9);
    }

    #[test]
    fn tiles_snapshot_round_trips() {
        let mut g = grid();
        g.apply_radial_constraint(Point::new(70.0, 130.0), &profile(25.0, 3.0));
        let tiles = g.tiles().to_vec();
        let mut fresh = grid();
        fresh.restore_tiles(tiles);
        assert_eq!(fresh, g);
        assert_eq!(
            fresh.density_at(Point::new(70.0, 105.0)),
            g.density_at(Point::new(70.0, 105.0))
        );
    }

    #[test]
    #[should_panic(expected = "tile count")]
    fn restore_rejects_wrong_layout() {
        let mut g = grid();
        g.restore_tiles(vec![Tile::Coarse(1.0)]);
    }
}
