//! # cocoa-localization — the Bayesian RF localization algorithm
//!
//! The paper's core algorithm (Section 2.2), adapted from Sichitiu &
//! Ramadurai's mobile-beacon localization for sensor networks:
//!
//! 1. an offline calibration phase builds the RSSI → distance **PDF Table**
//!    (that lives in [`cocoa_net::calibration`]);
//! 2. each received beacon imposes a positional constraint over the
//!    deployment area (Eq. 1) — implemented on a discrete posterior grid in
//!    [`grid`];
//! 3. Bayesian inference multiplies constraint into prior and renormalizes
//!    (Eq. 2) — [`bayes`];
//! 4. after ≥ 3 beacons, the posterior mean is the position estimate
//!    (Eq. 3);
//! 5. [`estimator`] wraps the algorithm in the CoCoA window lifecycle and
//!    defines the three evaluation modes (odometry-only / RF-only / CoCoA);
//! 6. [`backend`] makes the per-window solver pluggable behind the
//!    [`backend::RfBackend`] trait — Bayesian grid inference (the default),
//!    multilateration, and the EKF — per the paper's Section 5 note that
//!    CoCoA "is not tied to a specific localization technique".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod backend;
pub mod bayes;
pub mod ekf;
pub mod estimator;
pub mod grid;
pub mod kernel;
pub mod multilateration;

/// Glob-import of the most commonly used types.
pub mod prelude {
    pub use crate::adaptive::AdaptiveGrid;
    pub use crate::backend::{BackendCheckpoint, EkfBackend, RfBackend};
    pub use crate::bayes::{
        BayesianLocalizer, GridStats, ObservationResult, MIN_BEACONS_FOR_ESTIMATE,
    };
    pub use crate::ekf::{EkfConfig, EkfLocalizer, EkfSnapshot, EkfUpdate};
    pub use crate::estimator::{
        EstimatorMode, RfAlgorithm, WindowOutcome, WindowStats, WindowedRfEstimator,
    };
    pub use crate::grid::{ConstraintOutcome, GridConfig, PositionGrid};
    pub use crate::kernel::{GridKernel, GridPipeline, GridPrecision};
    pub use crate::multilateration::{MultilaterationConfig, Multilaterator, RangeObservation};
}
