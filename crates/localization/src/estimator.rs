//! Window-oriented estimation logic and the three estimator modes the
//! paper evaluates (Section 4): odometry-only, RF-only, and CoCoA (RF +
//! odometry fusion).
//!
//! The CoCoA timeline drives the RF part in *windows*: at each transmit
//! period the robot discards its posterior, accumulates the window's
//! beacons, and — if at least three arrived — takes a fresh fix. What
//! happens *between* windows is what distinguishes the modes:
//!
//! - **RF-only** freezes the last fix until the next window;
//! - **CoCoA** dead-reckons from the last fix with odometry;
//! - **odometry-only** never uses the radio at all.

use serde::{Deserialize, Serialize};

use cocoa_net::calibration::{PdfTable, RadialConstraintTable};
use cocoa_net::geometry::Point;
use cocoa_net::rssi::{Dbm, RssiBin};

use crate::adaptive::Tile;
use crate::bayes::{BayesianLocalizer, GridStats, ObservationResult, Posterior};
use crate::grid::GridConfig;
use crate::kernel::GridPipeline;
use crate::multilateration::{MultilaterationConfig, Multilaterator, RangeObservation};

/// Which localization strategy a robot runs (paper Sections 4.1–4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EstimatorMode {
    /// Dead reckoning from a known initial position (Fig. 4).
    OdometryOnly,
    /// Bayesian RF fixes, frozen between windows (Fig. 6).
    RfOnly,
    /// CoCoA: RF fixes, odometry in between (Fig. 7 onwards).
    Cocoa,
}

impl std::fmt::Display for EstimatorMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            EstimatorMode::OdometryOnly => "odometry-only",
            EstimatorMode::RfOnly => "rf-only",
            EstimatorMode::Cocoa => "cocoa",
        };
        f.write_str(s)
    }
}

impl EstimatorMode {
    /// Whether this mode listens for beacons.
    pub fn uses_rf(&self) -> bool {
        !matches!(self, EstimatorMode::OdometryOnly)
    }

    /// Whether this mode integrates odometry between windows.
    pub fn uses_odometry_between_windows(&self) -> bool {
        matches!(self, EstimatorMode::OdometryOnly | EstimatorMode::Cocoa)
    }
}

/// Which per-window RF algorithm computes the fix. The paper implements
/// Bayesian inference and notes (Section 5) that CoCoA "is not tied to a
/// specific localization technique. … Other approaches could be integrated
/// in CoCoA as well" — the multilateration baseline is exactly that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum RfAlgorithm {
    /// Bayesian grid inference (the paper's algorithm).
    #[default]
    Bayes,
    /// Weighted least-squares multilateration (the classic baseline).
    Multilateration,
}

impl std::fmt::Display for RfAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RfAlgorithm::Bayes => f.write_str("bayes"),
            RfAlgorithm::Multilateration => f.write_str("multilateration"),
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Backend {
    Bayes(Box<BayesianLocalizer>),
    Lateration(Multilaterator),
}

/// Statistics of a windowed estimator's life so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct WindowStats {
    /// Transmit windows begun.
    pub windows: u32,
    /// Windows that produced a fresh fix (≥ 3 beacons applied).
    pub fixes: u32,
    /// Windows whose fix was vetoed by the entropy watchdog.
    pub flat_windows: u32,
    /// Beacons offered across all windows.
    pub beacons_seen: u64,
    /// Beacons actually applied to posteriors.
    pub beacons_applied: u64,
    /// Beacons refused by the outlier gate.
    pub beacons_rejected_outlier: u64,
}

/// How a transmit window ended, as judged by
/// [`WindowedRfEstimator::end_window_guarded`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WindowOutcome {
    /// A fresh, trusted fix.
    Fix(Point),
    /// Enough beacons arrived, but the posterior stayed nearly uniform —
    /// the beacons were mutually contradictory (corruption, outliers) and
    /// the "fix" would be the area centre. The estimator keeps its previous
    /// fix and the caller should fall back to dead reckoning.
    FlatPosterior {
        /// Posterior entropy at window end, nats.
        entropy: f64,
        /// The watchdog threshold that was exceeded, nats.
        threshold: f64,
    },
    /// Fewer than the minimum beacons: no fix this window.
    NoFix,
}

/// The per-robot windowed RF estimator.
///
/// Drives a [`BayesianLocalizer`] through the CoCoA window lifecycle:
/// `begin_window → observe_beacon* → end_window`. If a window yields fewer
/// than three beacons, the previous fix is retained ("if certain robots do
/// not receive any beacons, they continue with their old estimated
/// position", paper Section 2.3).
///
/// # Examples
///
/// ```
/// use cocoa_localization::estimator::WindowedRfEstimator;
/// use cocoa_localization::grid::GridConfig;
/// use cocoa_net::calibration::{calibrate, CalibrationConfig};
/// use cocoa_net::channel::RfChannel;
/// use cocoa_net::geometry::{Area, Point};
/// use cocoa_sim::rng::SeedSplitter;
///
/// let channel = RfChannel::default();
/// let mut rng = SeedSplitter::new(2).stream("cal", 0);
/// let table = calibrate(&channel, &CalibrationConfig::default(), &mut rng);
/// let mut est = WindowedRfEstimator::new(GridConfig::new(Area::square(200.0), 2.0));
///
/// est.begin_window();
/// let robot = Point::new(50.0, 50.0);
/// for b in [Point::new(42.0, 50.0), Point::new(55.0, 58.0), Point::new(50.0, 40.0)] {
///     let rssi = channel.sample_rssi(robot.distance_to(b), &mut rng);
///     est.observe_beacon(&table, b, rssi);
/// }
/// let fix = est.end_window().expect("enough beacons");
/// assert!(fix.distance_to(robot) < 15.0);
/// assert_eq!(est.last_fix(), Some(fix));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowedRfEstimator {
    backend: Backend,
    last_fix: Option<Point>,
    in_window: bool,
    stats: WindowStats,
}

impl WindowedRfEstimator {
    /// Creates an estimator running the paper's Bayesian algorithm.
    pub fn new(grid: GridConfig) -> Self {
        Self::with_algorithm(grid, RfAlgorithm::Bayes)
    }

    /// Creates an estimator with an explicit per-window algorithm.
    pub fn with_algorithm(grid: GridConfig, algorithm: RfAlgorithm) -> Self {
        Self::with_pipeline(grid, algorithm, GridPipeline::default())
    }

    /// Creates an estimator with an explicit per-window algorithm and grid
    /// pipeline (kernel, precision, fusion, adaptive resolution). The
    /// pipeline only affects the Bayesian backend; multilateration has no
    /// grid and ignores it.
    pub fn with_pipeline(grid: GridConfig, algorithm: RfAlgorithm, pipeline: GridPipeline) -> Self {
        let backend = match algorithm {
            RfAlgorithm::Bayes => {
                Backend::Bayes(Box::new(BayesianLocalizer::with_pipeline(grid, pipeline)))
            }
            RfAlgorithm::Multilateration => Backend::Lateration(Multilaterator::new(
                grid.area,
                MultilaterationConfig::default(),
            )),
        };
        WindowedRfEstimator {
            backend,
            last_fix: None,
            in_window: false,
            stats: WindowStats::default(),
        }
    }

    /// The algorithm this estimator runs.
    pub fn algorithm(&self) -> RfAlgorithm {
        match self.backend {
            Backend::Bayes(_) => RfAlgorithm::Bayes,
            Backend::Lateration(_) => RfAlgorithm::Multilateration,
        }
    }

    /// Starts a transmit window: the posterior is thrown away (paper
    /// Section 2.3) and beacon accumulation begins.
    pub fn begin_window(&mut self) {
        match &mut self.backend {
            Backend::Bayes(b) => b.reset(),
            Backend::Lateration(l) => l.reset(),
        }
        self.in_window = true;
        self.stats.windows += 1;
    }

    /// Whether a window is currently open.
    pub fn in_window(&self) -> bool {
        self.in_window
    }

    /// Offers one received beacon to the open window.
    ///
    /// Beacons arriving outside a window (e.g. stale deliveries right after
    /// the radio slept) are counted but ignored.
    pub fn observe_beacon(
        &mut self,
        table: &PdfTable,
        beacon_pos: Point,
        rssi: Dbm,
    ) -> ObservationResult {
        self.stats.beacons_seen += 1;
        if !self.in_window {
            return ObservationResult::Rejected;
        }
        let r = match &mut self.backend {
            Backend::Bayes(b) => b.observe_beacon(table, beacon_pos, rssi),
            Backend::Lateration(l) => {
                if l.observe_beacon(table, beacon_pos, rssi) {
                    ObservationResult::Applied
                } else {
                    ObservationResult::NoPdf
                }
            }
        };
        if r == ObservationResult::Applied {
            self.stats.beacons_applied += 1;
        }
        r
    }

    /// Offers one received beacon, using the precomputed radial constraint
    /// cache for the Bayesian backend (the zero-allocation fast path).
    ///
    /// The multilateration backend has no radial form and falls back to the
    /// PDF table, so the two arguments must describe the same calibration.
    pub fn observe_beacon_radial(
        &mut self,
        table: &PdfTable,
        radial: &RadialConstraintTable,
        beacon_pos: Point,
        rssi: Dbm,
    ) -> ObservationResult {
        self.stats.beacons_seen += 1;
        if !self.in_window {
            return ObservationResult::Rejected;
        }
        let r = match &mut self.backend {
            Backend::Bayes(b) => b.observe_beacon_radial(radial, beacon_pos, rssi),
            Backend::Lateration(l) => {
                if l.observe_beacon(table, beacon_pos, rssi) {
                    ObservationResult::Applied
                } else {
                    ObservationResult::NoPdf
                }
            }
        };
        if r == ObservationResult::Applied {
            self.stats.beacons_applied += 1;
        }
        r
    }

    /// Offers one received beacon through the radial fast path, first
    /// screening it against an outlier gate.
    ///
    /// If `reference` is the robot's current position belief, the beacon's
    /// claimed position implies a distance to us; the observed RSSI implies
    /// another (the calibration PDF's mean). When the two disagree by more
    /// than `gate_m` metres the beacon is almost certainly corrupt or lying
    /// and is refused before it can distort the posterior. A `gate_m` of
    /// `0.0`, a missing reference, or an uncalibrated RSSI disables the
    /// check and the beacon flows through
    /// [`WindowedRfEstimator::observe_beacon_radial`] unchanged.
    pub fn observe_beacon_checked(
        &mut self,
        table: &PdfTable,
        radial: &RadialConstraintTable,
        beacon_pos: Point,
        rssi: Dbm,
        reference: Option<Point>,
        gate_m: f64,
    ) -> ObservationResult {
        if gate_m > 0.0 {
            if let (Some(refp), Some(pdf)) = (reference, table.lookup(rssi)) {
                let claimed = refp.distance_to(beacon_pos);
                if !claimed.is_finite() || (claimed - pdf.mean()).abs() > gate_m {
                    self.stats.beacons_seen += 1;
                    self.stats.beacons_rejected_outlier += 1;
                    return ObservationResult::Outlier;
                }
            }
        }
        self.observe_beacon_radial(table, radial, beacon_pos, rssi)
    }

    /// Closes the window. Returns the fresh fix if the window produced one
    /// (otherwise the previous fix remains in force and `None` is
    /// returned).
    pub fn end_window(&mut self) -> Option<Point> {
        match self.end_window_guarded(1.0) {
            WindowOutcome::Fix(fix) => Some(fix),
            WindowOutcome::FlatPosterior { .. } | WindowOutcome::NoFix => None,
        }
    }

    /// Closes the window with the entropy watchdog armed.
    ///
    /// A window that accumulated enough beacons normally yields a fix — but
    /// when the applied beacons were mutually contradictory (garbled
    /// coordinates, faulty sources) the posterior stays close to uniform
    /// and its mean is just the area centre. The watchdog vetoes such fixes:
    /// if the posterior entropy exceeds `watchdog_frac · max_entropy` the
    /// window reports [`WindowOutcome::FlatPosterior`], the previous fix is
    /// kept, and the caller degrades to dead reckoning.
    ///
    /// `watchdog_frac >= 1.0` disables the veto. The multilateration
    /// backend has no posterior, so the watchdog never fires there.
    ///
    /// Fused pipelines must flush their pending beacons before the window
    /// is judged — use
    /// [`end_window_guarded_with`](Self::end_window_guarded_with) and pass
    /// the radial constraint table whenever the pipeline may be fused.
    pub fn end_window_guarded(&mut self, watchdog_frac: f64) -> WindowOutcome {
        self.end_window_guarded_with(watchdog_frac, None)
    }

    /// [`end_window_guarded`](Self::end_window_guarded), first committing
    /// any beacons a fused pipeline recorded during the window in one
    /// batched grid pass. `radial` must describe the same calibration the
    /// beacons were observed under; `None` is only correct for unfused
    /// pipelines (any pending beacons would be dropped).
    pub fn end_window_guarded_with(
        &mut self,
        watchdog_frac: f64,
        radial: Option<&RadialConstraintTable>,
    ) -> WindowOutcome {
        if let (Backend::Bayes(b), Some(radial)) = (&mut self.backend, radial) {
            b.flush_pending(radial);
        }
        self.in_window = false;
        let estimate = match &self.backend {
            Backend::Bayes(b) => b.estimate(),
            Backend::Lateration(l) => l.estimate(),
        };
        let Some(fix) = estimate else {
            return WindowOutcome::NoFix;
        };
        if watchdog_frac < 1.0 {
            if let Backend::Bayes(b) = &self.backend {
                let entropy = b.entropy();
                let threshold = watchdog_frac * b.max_entropy();
                if entropy > threshold {
                    self.stats.flat_windows += 1;
                    return WindowOutcome::FlatPosterior { entropy, threshold };
                }
            }
        }
        self.last_fix = Some(fix);
        self.stats.fixes += 1;
        WindowOutcome::Fix(fix)
    }

    /// The most recent fix, if any window ever produced one.
    pub fn last_fix(&self) -> Option<Point> {
        self.last_fix
    }

    /// Posterior entropy (confidence proxy for the relay-beaconing guard).
    /// Multilateration has no posterior; it reports infinity.
    pub fn entropy(&self) -> f64 {
        match &self.backend {
            Backend::Bayes(b) => b.entropy(),
            Backend::Lateration(_) => f64::INFINITY,
        }
    }

    /// Posterior entropy as a fraction of the uniform-grid maximum, in
    /// `[0, 1]` (1 = completely uninformative). `None` for the
    /// multilateration backend, which has no posterior — telemetry
    /// timelines record it as null rather than a fake number.
    pub fn entropy_fraction(&self) -> Option<f64> {
        match &self.backend {
            Backend::Bayes(b) => {
                let max = b.max_entropy();
                if max > 0.0 {
                    Some(b.entropy() / max)
                } else {
                    Some(0.0)
                }
            }
            Backend::Lateration(_) => None,
        }
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> WindowStats {
        self.stats
    }

    /// Kernel/fusion/adaptive accounting of the Bayesian backend (the
    /// `grid.*` telemetry counters). Zero for multilateration.
    pub fn grid_stats(&self) -> GridStats {
        match &self.backend {
            Backend::Bayes(b) => *b.grid_stats(),
            Backend::Lateration(_) => GridStats::default(),
        }
    }

    /// The active grid pipeline, if the Bayesian backend is running.
    pub fn pipeline(&self) -> Option<&GridPipeline> {
        match &self.backend {
            Backend::Bayes(b) => Some(b.pipeline()),
            Backend::Lateration(_) => None,
        }
    }

    /// The estimator's complete state as checkpoint data. Exactly one of
    /// the backend-specific field groups is populated, per
    /// [`EstimatorCheckpoint::algorithm`]; within the Bayes group, dense
    /// pipelines fill `posterior_cells` and adaptive pipelines fill
    /// `adaptive_tiles`.
    pub fn checkpoint(&self) -> EstimatorCheckpoint {
        let base = EstimatorCheckpoint {
            algorithm: self.algorithm(),
            last_fix: self.last_fix,
            in_window: self.in_window,
            stats: self.stats,
            posterior_cells: Vec::new(),
            adaptive_tiles: Vec::new(),
            pending: Vec::new(),
            grid_stats: GridStats::default(),
            beacons_applied: 0,
            beacons_seen: 0,
            ranges: Vec::new(),
        };
        match &self.backend {
            Backend::Bayes(b) => {
                let (cells, tiles) = match b.posterior() {
                    Posterior::Dense(g) => (g.cells().to_vec(), Vec::new()),
                    Posterior::Adaptive(g) => (Vec::new(), g.tiles().to_vec()),
                };
                EstimatorCheckpoint {
                    posterior_cells: cells,
                    adaptive_tiles: tiles,
                    pending: b.pending().to_vec(),
                    grid_stats: *b.grid_stats(),
                    beacons_applied: b.beacons_applied(),
                    beacons_seen: b.beacons_seen(),
                    ..base
                }
            }
            Backend::Lateration(l) => EstimatorCheckpoint {
                ranges: l.ranges().to_vec(),
                ..base
            },
        }
    }

    /// Rebuilds an estimator from checkpointed state over `grid` (the same
    /// grid configuration the original was built with), under the default
    /// grid pipeline. The multilateration backend is reconstructed with the
    /// default solver configuration, as
    /// [`WindowedRfEstimator::with_algorithm`] uses.
    pub fn from_checkpoint(grid: GridConfig, c: EstimatorCheckpoint) -> Self {
        Self::from_checkpoint_with(grid, GridPipeline::default(), c)
    }

    /// [`from_checkpoint`](Self::from_checkpoint) under an explicit grid
    /// pipeline — required for bit-identical resume of non-default kernel
    /// variants, since the pipeline decides which posterior representation
    /// and counters the checkpoint fields map onto.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint's posterior representation (dense cells vs
    /// adaptive tiles) does not match the pipeline's `adaptive` flag.
    pub fn from_checkpoint_with(
        grid: GridConfig,
        pipeline: GridPipeline,
        c: EstimatorCheckpoint,
    ) -> Self {
        let backend = match c.algorithm {
            RfAlgorithm::Bayes => {
                let mut b = BayesianLocalizer::with_pipeline(grid, pipeline);
                if pipeline.adaptive {
                    b.restore_posterior_tiles(c.adaptive_tiles);
                } else {
                    b.restore_posterior_cells(&c.posterior_cells);
                }
                b.restore_counters(c.beacons_applied, c.beacons_seen, c.pending, c.grid_stats);
                Backend::Bayes(Box::new(b))
            }
            RfAlgorithm::Multilateration => {
                let mut l = Multilaterator::new(grid.area, MultilaterationConfig::default());
                l.restore_ranges(c.ranges);
                Backend::Lateration(l)
            }
        };
        WindowedRfEstimator {
            backend,
            last_fix: c.last_fix,
            in_window: c.in_window,
            stats: c.stats,
        }
    }
}

/// The windowed estimator's complete state as checkpoint data (see
/// [`WindowedRfEstimator::checkpoint`]).
#[derive(Debug, Clone, PartialEq)]
pub struct EstimatorCheckpoint {
    /// Which backend algorithm was running.
    pub algorithm: RfAlgorithm,
    /// The most recent trusted fix, if any.
    pub last_fix: Option<Point>,
    /// Whether a transmit window was open.
    pub in_window: bool,
    /// Lifetime statistics.
    pub stats: WindowStats,
    /// Posterior cell probabilities (Bayes backend with a dense pipeline;
    /// empty otherwise).
    pub posterior_cells: Vec<f64>,
    /// Posterior tile state (Bayes backend with the adaptive pipeline;
    /// empty otherwise).
    pub adaptive_tiles: Vec<Tile>,
    /// Recorded-but-unflushed fused beacons (Bayes backend only).
    pub pending: Vec<(Point, RssiBin)>,
    /// Kernel/fusion/adaptive accounting (Bayes backend only).
    pub grid_stats: GridStats,
    /// Beacons applied since the last window reset (Bayes backend only).
    pub beacons_applied: u32,
    /// Beacons offered since the last window reset (Bayes backend only).
    pub beacons_seen: u32,
    /// Collected ranges (multilateration backend only; empty otherwise).
    pub ranges: Vec<RangeObservation>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocoa_net::calibration::{calibrate, CalibrationConfig};
    use cocoa_net::channel::RfChannel;
    use cocoa_net::geometry::Area;
    use cocoa_sim::rng::SeedSplitter;

    fn setup() -> (RfChannel, PdfTable, WindowedRfEstimator) {
        let ch = RfChannel::default();
        let mut rng = SeedSplitter::new(1).stream("cal", 0);
        let table = calibrate(&ch, &CalibrationConfig::default(), &mut rng);
        let est = WindowedRfEstimator::new(GridConfig::new(Area::square(200.0), 2.0));
        (ch, table, est)
    }

    #[test]
    fn window_with_too_few_beacons_keeps_old_fix() {
        let (ch, table, mut est) = setup();
        let mut rng = SeedSplitter::new(2).stream("t", 0);
        let robot = Point::new(100.0, 100.0);
        // First window: 3 beacons, get a fix.
        est.begin_window();
        for b in [
            Point::new(92.0, 100.0),
            Point::new(108.0, 104.0),
            Point::new(100.0, 92.0),
        ] {
            let rssi = ch.sample_rssi(robot.distance_to(b), &mut rng);
            est.observe_beacon(&table, b, rssi);
        }
        let fix1 = est.end_window().expect("fix");
        // Second window: only 1 beacon — no new fix, old one kept.
        est.begin_window();
        let rssi = ch.sample_rssi(10.0, &mut rng);
        est.observe_beacon(&table, Point::new(90.0, 100.0), rssi);
        assert_eq!(est.end_window(), None);
        assert_eq!(est.last_fix(), Some(fix1));
        assert_eq!(est.stats().windows, 2);
        assert_eq!(est.stats().fixes, 1);
    }

    #[test]
    fn beacons_outside_window_are_ignored() {
        let (ch, table, mut est) = setup();
        let mut rng = SeedSplitter::new(3).stream("t", 0);
        let rssi = ch.sample_rssi(10.0, &mut rng);
        let r = est.observe_beacon(&table, Point::new(90.0, 100.0), rssi);
        assert_eq!(r, ObservationResult::Rejected);
        assert_eq!(est.stats().beacons_seen, 1);
        assert_eq!(est.stats().beacons_applied, 0);
        assert!(est.last_fix().is_none());
    }

    #[test]
    fn each_window_starts_fresh() {
        let (ch, table, mut est) = setup();
        let mut rng = SeedSplitter::new(4).stream("t", 0);
        let robot = Point::new(60.0, 60.0);
        let beacons = [
            Point::new(52.0, 60.0),
            Point::new(68.0, 64.0),
            Point::new(60.0, 52.0),
        ];
        est.begin_window();
        for b in beacons {
            let rssi = ch.sample_rssi(robot.distance_to(b), &mut rng);
            est.observe_beacon(&table, b, rssi);
        }
        est.end_window().expect("fix 1");
        // Next window near a different location converges there, not to a
        // blend — proof the posterior was discarded.
        let robot2 = Point::new(150.0, 150.0);
        let beacons2 = [
            Point::new(142.0, 150.0),
            Point::new(158.0, 154.0),
            Point::new(150.0, 142.0),
        ];
        est.begin_window();
        for b in beacons2 {
            let rssi = ch.sample_rssi(robot2.distance_to(b), &mut rng);
            est.observe_beacon(&table, b, rssi);
        }
        let fix2 = est.end_window().expect("fix 2");
        assert!(fix2.distance_to(robot2) < 20.0, "fix2 {fix2}");
    }

    #[test]
    fn outlier_gate_refuses_inconsistent_beacons() {
        let (ch, table, mut est) = setup();
        let radial = crate::bayes::radial_constraints_for_grid(
            &table,
            &GridConfig::new(Area::square(200.0), 2.0),
        );
        est.begin_window();
        let reference = Some(Point::new(100.0, 100.0));
        // The beacon claims to be 5 m away, but its RSSI says ~80 m: a
        // corrupted coordinate field.
        let lying_rssi = ch.mean_rssi(80.0);
        let r = est.observe_beacon_checked(
            &table,
            &radial,
            Point::new(105.0, 100.0),
            lying_rssi,
            reference,
            40.0,
        );
        assert_eq!(r, ObservationResult::Outlier);
        assert_eq!(est.stats().beacons_rejected_outlier, 1);
        assert_eq!(est.stats().beacons_applied, 0);
        // A consistent beacon passes the gate.
        let honest_rssi = ch.mean_rssi(5.0);
        let r = est.observe_beacon_checked(
            &table,
            &radial,
            Point::new(105.0, 100.0),
            honest_rssi,
            reference,
            40.0,
        );
        assert_eq!(r, ObservationResult::Applied);
        // Gate 0.0 disables the check entirely.
        let r = est.observe_beacon_checked(
            &table,
            &radial,
            Point::new(105.0, 100.0),
            lying_rssi,
            reference,
            0.0,
        );
        assert_ne!(r, ObservationResult::Outlier);
    }

    #[test]
    fn entropy_watchdog_vetoes_flat_posteriors() {
        let (ch, table, mut est) = setup();
        let mut rng = SeedSplitter::new(9).stream("t", 0);
        let robot = Point::new(100.0, 100.0);
        let beacons = [
            Point::new(92.0, 100.0),
            Point::new(108.0, 104.0),
            Point::new(100.0, 92.0),
        ];
        est.begin_window();
        for b in beacons {
            let rssi = ch.sample_rssi(robot.distance_to(b), &mut rng);
            est.observe_beacon(&table, b, rssi);
        }
        // An absurdly strict watchdog treats even a good posterior as flat:
        // the fix is vetoed and the previous (absent) fix kept.
        match est.end_window_guarded(1e-6) {
            WindowOutcome::FlatPosterior { entropy, threshold } => {
                assert!(entropy > threshold);
            }
            other => panic!("expected flat-posterior veto, got {other:?}"),
        }
        assert_eq!(est.last_fix(), None);
        assert_eq!(est.stats().flat_windows, 1);
        assert_eq!(est.stats().fixes, 0);
        // The same beacons with the watchdog disabled produce a fix.
        est.begin_window();
        for b in beacons {
            let rssi = ch.sample_rssi(robot.distance_to(b), &mut rng);
            est.observe_beacon(&table, b, rssi);
        }
        assert!(matches!(est.end_window_guarded(1.0), WindowOutcome::Fix(_)));
        assert_eq!(est.stats().fixes, 1);
    }

    #[test]
    fn mode_properties() {
        assert!(!EstimatorMode::OdometryOnly.uses_rf());
        assert!(EstimatorMode::RfOnly.uses_rf());
        assert!(EstimatorMode::Cocoa.uses_rf());
        assert!(EstimatorMode::Cocoa.uses_odometry_between_windows());
        assert!(!EstimatorMode::RfOnly.uses_odometry_between_windows());
        assert_eq!(EstimatorMode::Cocoa.to_string(), "cocoa");
    }
}
