//! Window-oriented estimation logic and the three estimator modes the
//! paper evaluates (Section 4): odometry-only, RF-only, and CoCoA (RF +
//! odometry fusion).
//!
//! The CoCoA timeline drives the RF part in *windows*: at each transmit
//! period the robot discards its posterior, accumulates the window's
//! beacons, and — if at least three arrived — takes a fresh fix. What
//! happens *between* windows is what distinguishes the modes:
//!
//! - **RF-only** freezes the last fix until the next window;
//! - **CoCoA** dead-reckons from the last fix with odometry;
//! - **odometry-only** never uses the radio at all.

use serde::{Deserialize, Serialize};

use cocoa_net::calibration::{PdfTable, RadialConstraintTable};
use cocoa_net::geometry::Point;
use cocoa_net::rssi::Dbm;

use crate::bayes::{BayesianLocalizer, ObservationResult};
use crate::grid::GridConfig;
use crate::multilateration::{MultilaterationConfig, Multilaterator};

/// Which localization strategy a robot runs (paper Sections 4.1–4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EstimatorMode {
    /// Dead reckoning from a known initial position (Fig. 4).
    OdometryOnly,
    /// Bayesian RF fixes, frozen between windows (Fig. 6).
    RfOnly,
    /// CoCoA: RF fixes, odometry in between (Fig. 7 onwards).
    Cocoa,
}

impl std::fmt::Display for EstimatorMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            EstimatorMode::OdometryOnly => "odometry-only",
            EstimatorMode::RfOnly => "rf-only",
            EstimatorMode::Cocoa => "cocoa",
        };
        f.write_str(s)
    }
}

impl EstimatorMode {
    /// Whether this mode listens for beacons.
    pub fn uses_rf(&self) -> bool {
        !matches!(self, EstimatorMode::OdometryOnly)
    }

    /// Whether this mode integrates odometry between windows.
    pub fn uses_odometry_between_windows(&self) -> bool {
        matches!(self, EstimatorMode::OdometryOnly | EstimatorMode::Cocoa)
    }
}

/// Which per-window RF algorithm computes the fix. The paper implements
/// Bayesian inference and notes (Section 5) that CoCoA "is not tied to a
/// specific localization technique. … Other approaches could be integrated
/// in CoCoA as well" — the multilateration baseline is exactly that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum RfAlgorithm {
    /// Bayesian grid inference (the paper's algorithm).
    #[default]
    Bayes,
    /// Weighted least-squares multilateration (the classic baseline).
    Multilateration,
}

impl std::fmt::Display for RfAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RfAlgorithm::Bayes => f.write_str("bayes"),
            RfAlgorithm::Multilateration => f.write_str("multilateration"),
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Backend {
    Bayes(BayesianLocalizer),
    Lateration(Multilaterator),
}

/// Statistics of a windowed estimator's life so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct WindowStats {
    /// Transmit windows begun.
    pub windows: u32,
    /// Windows that produced a fresh fix (≥ 3 beacons applied).
    pub fixes: u32,
    /// Beacons offered across all windows.
    pub beacons_seen: u64,
    /// Beacons actually applied to posteriors.
    pub beacons_applied: u64,
}

/// The per-robot windowed RF estimator.
///
/// Drives a [`BayesianLocalizer`] through the CoCoA window lifecycle:
/// `begin_window → observe_beacon* → end_window`. If a window yields fewer
/// than three beacons, the previous fix is retained ("if certain robots do
/// not receive any beacons, they continue with their old estimated
/// position", paper Section 2.3).
///
/// # Examples
///
/// ```
/// use cocoa_localization::estimator::WindowedRfEstimator;
/// use cocoa_localization::grid::GridConfig;
/// use cocoa_net::calibration::{calibrate, CalibrationConfig};
/// use cocoa_net::channel::RfChannel;
/// use cocoa_net::geometry::{Area, Point};
/// use cocoa_sim::rng::SeedSplitter;
///
/// let channel = RfChannel::default();
/// let mut rng = SeedSplitter::new(2).stream("cal", 0);
/// let table = calibrate(&channel, &CalibrationConfig::default(), &mut rng);
/// let mut est = WindowedRfEstimator::new(GridConfig::new(Area::square(200.0), 2.0));
///
/// est.begin_window();
/// let robot = Point::new(50.0, 50.0);
/// for b in [Point::new(42.0, 50.0), Point::new(55.0, 58.0), Point::new(50.0, 40.0)] {
///     let rssi = channel.sample_rssi(robot.distance_to(b), &mut rng);
///     est.observe_beacon(&table, b, rssi);
/// }
/// let fix = est.end_window().expect("enough beacons");
/// assert!(fix.distance_to(robot) < 15.0);
/// assert_eq!(est.last_fix(), Some(fix));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowedRfEstimator {
    backend: Backend,
    last_fix: Option<Point>,
    in_window: bool,
    stats: WindowStats,
}

impl WindowedRfEstimator {
    /// Creates an estimator running the paper's Bayesian algorithm.
    pub fn new(grid: GridConfig) -> Self {
        Self::with_algorithm(grid, RfAlgorithm::Bayes)
    }

    /// Creates an estimator with an explicit per-window algorithm.
    pub fn with_algorithm(grid: GridConfig, algorithm: RfAlgorithm) -> Self {
        let backend = match algorithm {
            RfAlgorithm::Bayes => Backend::Bayes(BayesianLocalizer::new(grid)),
            RfAlgorithm::Multilateration => Backend::Lateration(Multilaterator::new(
                grid.area,
                MultilaterationConfig::default(),
            )),
        };
        WindowedRfEstimator {
            backend,
            last_fix: None,
            in_window: false,
            stats: WindowStats::default(),
        }
    }

    /// The algorithm this estimator runs.
    pub fn algorithm(&self) -> RfAlgorithm {
        match self.backend {
            Backend::Bayes(_) => RfAlgorithm::Bayes,
            Backend::Lateration(_) => RfAlgorithm::Multilateration,
        }
    }

    /// Starts a transmit window: the posterior is thrown away (paper
    /// Section 2.3) and beacon accumulation begins.
    pub fn begin_window(&mut self) {
        match &mut self.backend {
            Backend::Bayes(b) => b.reset(),
            Backend::Lateration(l) => l.reset(),
        }
        self.in_window = true;
        self.stats.windows += 1;
    }

    /// Whether a window is currently open.
    pub fn in_window(&self) -> bool {
        self.in_window
    }

    /// Offers one received beacon to the open window.
    ///
    /// Beacons arriving outside a window (e.g. stale deliveries right after
    /// the radio slept) are counted but ignored.
    pub fn observe_beacon(
        &mut self,
        table: &PdfTable,
        beacon_pos: Point,
        rssi: Dbm,
    ) -> ObservationResult {
        self.stats.beacons_seen += 1;
        if !self.in_window {
            return ObservationResult::Rejected;
        }
        let r = match &mut self.backend {
            Backend::Bayes(b) => b.observe_beacon(table, beacon_pos, rssi),
            Backend::Lateration(l) => {
                if l.observe_beacon(table, beacon_pos, rssi) {
                    ObservationResult::Applied
                } else {
                    ObservationResult::NoPdf
                }
            }
        };
        if r == ObservationResult::Applied {
            self.stats.beacons_applied += 1;
        }
        r
    }

    /// Offers one received beacon, using the precomputed radial constraint
    /// cache for the Bayesian backend (the zero-allocation fast path).
    ///
    /// The multilateration backend has no radial form and falls back to the
    /// PDF table, so the two arguments must describe the same calibration.
    pub fn observe_beacon_radial(
        &mut self,
        table: &PdfTable,
        radial: &RadialConstraintTable,
        beacon_pos: Point,
        rssi: Dbm,
    ) -> ObservationResult {
        self.stats.beacons_seen += 1;
        if !self.in_window {
            return ObservationResult::Rejected;
        }
        let r = match &mut self.backend {
            Backend::Bayes(b) => b.observe_beacon_radial(radial, beacon_pos, rssi),
            Backend::Lateration(l) => {
                if l.observe_beacon(table, beacon_pos, rssi) {
                    ObservationResult::Applied
                } else {
                    ObservationResult::NoPdf
                }
            }
        };
        if r == ObservationResult::Applied {
            self.stats.beacons_applied += 1;
        }
        r
    }

    /// Closes the window. Returns the fresh fix if the window produced one
    /// (otherwise the previous fix remains in force and `None` is
    /// returned).
    pub fn end_window(&mut self) -> Option<Point> {
        self.in_window = false;
        let estimate = match &self.backend {
            Backend::Bayes(b) => b.estimate(),
            Backend::Lateration(l) => l.estimate(),
        };
        match estimate {
            Some(fix) => {
                self.last_fix = Some(fix);
                self.stats.fixes += 1;
                Some(fix)
            }
            None => None,
        }
    }

    /// The most recent fix, if any window ever produced one.
    pub fn last_fix(&self) -> Option<Point> {
        self.last_fix
    }

    /// Posterior entropy (confidence proxy for the relay-beaconing guard).
    /// Multilateration has no posterior; it reports infinity.
    pub fn entropy(&self) -> f64 {
        match &self.backend {
            Backend::Bayes(b) => b.entropy(),
            Backend::Lateration(_) => f64::INFINITY,
        }
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> WindowStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocoa_net::calibration::{calibrate, CalibrationConfig};
    use cocoa_net::channel::RfChannel;
    use cocoa_net::geometry::Area;
    use cocoa_sim::rng::SeedSplitter;

    fn setup() -> (RfChannel, PdfTable, WindowedRfEstimator) {
        let ch = RfChannel::default();
        let mut rng = SeedSplitter::new(1).stream("cal", 0);
        let table = calibrate(&ch, &CalibrationConfig::default(), &mut rng);
        let est = WindowedRfEstimator::new(GridConfig::new(Area::square(200.0), 2.0));
        (ch, table, est)
    }

    #[test]
    fn window_with_too_few_beacons_keeps_old_fix() {
        let (ch, table, mut est) = setup();
        let mut rng = SeedSplitter::new(2).stream("t", 0);
        let robot = Point::new(100.0, 100.0);
        // First window: 3 beacons, get a fix.
        est.begin_window();
        for b in [
            Point::new(92.0, 100.0),
            Point::new(108.0, 104.0),
            Point::new(100.0, 92.0),
        ] {
            let rssi = ch.sample_rssi(robot.distance_to(b), &mut rng);
            est.observe_beacon(&table, b, rssi);
        }
        let fix1 = est.end_window().expect("fix");
        // Second window: only 1 beacon — no new fix, old one kept.
        est.begin_window();
        let rssi = ch.sample_rssi(10.0, &mut rng);
        est.observe_beacon(&table, Point::new(90.0, 100.0), rssi);
        assert_eq!(est.end_window(), None);
        assert_eq!(est.last_fix(), Some(fix1));
        assert_eq!(est.stats().windows, 2);
        assert_eq!(est.stats().fixes, 1);
    }

    #[test]
    fn beacons_outside_window_are_ignored() {
        let (ch, table, mut est) = setup();
        let mut rng = SeedSplitter::new(3).stream("t", 0);
        let rssi = ch.sample_rssi(10.0, &mut rng);
        let r = est.observe_beacon(&table, Point::new(90.0, 100.0), rssi);
        assert_eq!(r, ObservationResult::Rejected);
        assert_eq!(est.stats().beacons_seen, 1);
        assert_eq!(est.stats().beacons_applied, 0);
        assert!(est.last_fix().is_none());
    }

    #[test]
    fn each_window_starts_fresh() {
        let (ch, table, mut est) = setup();
        let mut rng = SeedSplitter::new(4).stream("t", 0);
        let robot = Point::new(60.0, 60.0);
        let beacons = [
            Point::new(52.0, 60.0),
            Point::new(68.0, 64.0),
            Point::new(60.0, 52.0),
        ];
        est.begin_window();
        for b in beacons {
            let rssi = ch.sample_rssi(robot.distance_to(b), &mut rng);
            est.observe_beacon(&table, b, rssi);
        }
        est.end_window().expect("fix 1");
        // Next window near a different location converges there, not to a
        // blend — proof the posterior was discarded.
        let robot2 = Point::new(150.0, 150.0);
        let beacons2 = [
            Point::new(142.0, 150.0),
            Point::new(158.0, 154.0),
            Point::new(150.0, 142.0),
        ];
        est.begin_window();
        for b in beacons2 {
            let rssi = ch.sample_rssi(robot2.distance_to(b), &mut rng);
            est.observe_beacon(&table, b, rssi);
        }
        let fix2 = est.end_window().expect("fix 2");
        assert!(fix2.distance_to(robot2) < 20.0, "fix2 {fix2}");
    }

    #[test]
    fn mode_properties() {
        assert!(!EstimatorMode::OdometryOnly.uses_rf());
        assert!(EstimatorMode::RfOnly.uses_rf());
        assert!(EstimatorMode::Cocoa.uses_rf());
        assert!(EstimatorMode::Cocoa.uses_odometry_between_windows());
        assert!(!EstimatorMode::RfOnly.uses_odometry_between_windows());
        assert_eq!(EstimatorMode::Cocoa.to_string(), "cocoa");
    }
}
