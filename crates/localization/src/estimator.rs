//! Window-oriented estimation logic and the three estimator modes the
//! paper evaluates (Section 4): odometry-only, RF-only, and CoCoA (RF +
//! odometry fusion).
//!
//! The CoCoA timeline drives the RF part in *windows*: at each transmit
//! period the robot discards its posterior, accumulates the window's
//! beacons, and — if at least three arrived — takes a fresh fix. What
//! happens *between* windows is what distinguishes the modes:
//!
//! - **RF-only** freezes the last fix until the next window;
//! - **CoCoA** dead-reckons from the last fix with odometry;
//! - **odometry-only** never uses the radio at all.
//!
//! The window *lifecycle* (this module) is separate from the per-window
//! *solver*, which lives behind the [`RfBackend`] trait in
//! [`crate::backend`]: Bayesian grid inference (the paper's algorithm),
//! weighted least-squares multilateration, and an extended Kalman filter
//! that carries state across windows.

use serde::{Deserialize, Serialize};

use cocoa_net::calibration::{PdfTable, RadialConstraintTable};
use cocoa_net::geometry::Point;
use cocoa_net::rssi::Dbm;

use crate::backend::{BackendCheckpoint, EkfBackend, RfBackend};
use crate::bayes::{BayesianLocalizer, GridStats, ObservationResult};
use crate::grid::GridConfig;
use crate::kernel::GridPipeline;
use crate::multilateration::{MultilaterationConfig, Multilaterator};

/// Which localization strategy a robot runs (paper Sections 4.1–4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EstimatorMode {
    /// Dead reckoning from a known initial position (Fig. 4).
    OdometryOnly,
    /// Bayesian RF fixes, frozen between windows (Fig. 6).
    RfOnly,
    /// CoCoA: RF fixes, odometry in between (Fig. 7 onwards).
    Cocoa,
}

impl std::fmt::Display for EstimatorMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            EstimatorMode::OdometryOnly => "odometry-only",
            EstimatorMode::RfOnly => "rf-only",
            EstimatorMode::Cocoa => "cocoa",
        };
        f.write_str(s)
    }
}

impl EstimatorMode {
    /// Whether this mode listens for beacons.
    pub fn uses_rf(&self) -> bool {
        !matches!(self, EstimatorMode::OdometryOnly)
    }

    /// Whether this mode integrates odometry between windows.
    pub fn uses_odometry_between_windows(&self) -> bool {
        matches!(self, EstimatorMode::OdometryOnly | EstimatorMode::Cocoa)
    }
}

/// Which per-window RF algorithm computes the fix. The paper implements
/// Bayesian inference and notes (Section 5) that CoCoA "is not tied to a
/// specific localization technique. … Other approaches could be integrated
/// in CoCoA as well" — the multilateration baseline and the EKF are exactly
/// that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum RfAlgorithm {
    /// Bayesian grid inference (the paper's algorithm).
    #[default]
    Bayes,
    /// Weighted least-squares multilateration (the classic baseline).
    Multilateration,
    /// Extended Kalman filter: odometry prediction between windows, gated
    /// range updates from beacon RSSI (the Kalman-family alternative the
    /// paper's related work surveys).
    Ekf,
}

impl std::fmt::Display for RfAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RfAlgorithm::Bayes => f.write_str("bayes"),
            RfAlgorithm::Multilateration => f.write_str("multilateration"),
            RfAlgorithm::Ekf => f.write_str("ekf"),
        }
    }
}

impl RfAlgorithm {
    /// Every selectable algorithm, in codec-tag order.
    pub const ALL: [RfAlgorithm; 3] = [
        RfAlgorithm::Bayes,
        RfAlgorithm::Multilateration,
        RfAlgorithm::Ekf,
    ];
}

/// The concrete solver behind the lifecycle. An enum (rather than a boxed
/// trait object) so the estimator keeps its `Clone`/`PartialEq`/serde
/// derives; every behavioural access goes through [`RfBackend`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Backend {
    Bayes(Box<BayesianLocalizer>),
    Lateration(Multilaterator),
    Ekf(EkfBackend),
}

impl Backend {
    fn as_dyn(&self) -> &dyn RfBackend {
        match self {
            Backend::Bayes(b) => &**b,
            Backend::Lateration(l) => l,
            Backend::Ekf(e) => e,
        }
    }

    fn as_dyn_mut(&mut self) -> &mut dyn RfBackend {
        match self {
            Backend::Bayes(b) => &mut **b,
            Backend::Lateration(l) => l,
            Backend::Ekf(e) => e,
        }
    }
}

/// Statistics of a windowed estimator's life so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct WindowStats {
    /// Transmit windows begun.
    pub windows: u32,
    /// Windows that produced a fresh fix (≥ 3 beacons applied).
    pub fixes: u32,
    /// Windows whose fix was vetoed by the entropy watchdog.
    pub flat_windows: u32,
    /// Beacons offered across all windows.
    pub beacons_seen: u64,
    /// Beacons actually applied to posteriors.
    pub beacons_applied: u64,
    /// Beacons refused by the outlier gate (the shared claimed-distance
    /// gate, plus the EKF backend's innovation gate).
    pub beacons_rejected_outlier: u64,
}

impl WindowStats {
    /// The statistics as `(short-name, value)` pairs, in the order the
    /// `estimator.<backend>.*` telemetry counters are exported.
    pub fn counters(&self) -> [(&'static str, u64); 6] {
        [
            ("windows", u64::from(self.windows)),
            ("fixes", u64::from(self.fixes)),
            ("flat_windows", u64::from(self.flat_windows)),
            ("beacons_seen", self.beacons_seen),
            ("beacons_applied", self.beacons_applied),
            ("beacons_rejected_outlier", self.beacons_rejected_outlier),
        ]
    }

    /// Adds another estimator's lifetime statistics into this one (the
    /// team-wide aggregation the telemetry counters report).
    pub fn absorb(&mut self, other: &WindowStats) {
        self.windows += other.windows;
        self.fixes += other.fixes;
        self.flat_windows += other.flat_windows;
        self.beacons_seen += other.beacons_seen;
        self.beacons_applied += other.beacons_applied;
        self.beacons_rejected_outlier += other.beacons_rejected_outlier;
    }
}

/// How a transmit window ended, as judged by
/// [`WindowedRfEstimator::end_window_guarded`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WindowOutcome {
    /// A fresh, trusted fix.
    Fix(Point),
    /// Enough beacons arrived, but the posterior stayed nearly uniform —
    /// the beacons were mutually contradictory (corruption, outliers) and
    /// the "fix" would be the area centre. The estimator keeps its previous
    /// fix and the caller should fall back to dead reckoning.
    FlatPosterior {
        /// Posterior entropy at window end, nats.
        entropy: f64,
        /// The watchdog threshold that was exceeded, nats.
        threshold: f64,
    },
    /// Fewer than the minimum beacons: no fix this window.
    NoFix,
}

/// The per-robot windowed RF estimator.
///
/// Drives an [`RfBackend`] through the CoCoA window lifecycle:
/// `begin_window → observe_beacon* → end_window`. If a window yields fewer
/// than three beacons, the previous fix is retained ("if certain robots do
/// not receive any beacons, they continue with their old estimated
/// position", paper Section 2.3). The lifecycle policy — window state, the
/// shared outlier gate, the entropy watchdog, [`WindowStats`] — lives here;
/// what a window's beacons mean is the backend's business.
///
/// # Examples
///
/// ```
/// use cocoa_localization::estimator::WindowedRfEstimator;
/// use cocoa_localization::grid::GridConfig;
/// use cocoa_net::calibration::{calibrate, CalibrationConfig};
/// use cocoa_net::channel::RfChannel;
/// use cocoa_net::geometry::{Area, Point};
/// use cocoa_sim::rng::SeedSplitter;
///
/// let channel = RfChannel::default();
/// let mut rng = SeedSplitter::new(2).stream("cal", 0);
/// let table = calibrate(&channel, &CalibrationConfig::default(), &mut rng);
/// let mut est = WindowedRfEstimator::new(GridConfig::new(Area::square(200.0), 2.0));
///
/// est.begin_window();
/// let robot = Point::new(50.0, 50.0);
/// for b in [Point::new(42.0, 50.0), Point::new(55.0, 58.0), Point::new(50.0, 40.0)] {
///     let rssi = channel.sample_rssi(robot.distance_to(b), &mut rng);
///     est.observe_beacon(&table, b, rssi);
/// }
/// let fix = est.end_window().expect("enough beacons");
/// assert!(fix.distance_to(robot) < 15.0);
/// assert_eq!(est.last_fix(), Some(fix));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowedRfEstimator {
    backend: Backend,
    last_fix: Option<Point>,
    in_window: bool,
    stats: WindowStats,
}

impl WindowedRfEstimator {
    /// Creates an estimator running the paper's Bayesian algorithm.
    pub fn new(grid: GridConfig) -> Self {
        Self::with_algorithm(grid, RfAlgorithm::Bayes)
    }

    /// Creates an estimator with an explicit per-window algorithm.
    pub fn with_algorithm(grid: GridConfig, algorithm: RfAlgorithm) -> Self {
        Self::with_pipeline(grid, algorithm, GridPipeline::default())
    }

    /// Creates an estimator with an explicit per-window algorithm and grid
    /// pipeline (kernel, precision, fusion, adaptive resolution). The
    /// pipeline only affects the Bayesian backend; the gridless backends
    /// (multilateration, EKF) ignore it.
    pub fn with_pipeline(grid: GridConfig, algorithm: RfAlgorithm, pipeline: GridPipeline) -> Self {
        let backend = match algorithm {
            RfAlgorithm::Bayes => {
                Backend::Bayes(Box::new(BayesianLocalizer::with_pipeline(grid, pipeline)))
            }
            RfAlgorithm::Multilateration => Backend::Lateration(Multilaterator::new(
                grid.area,
                MultilaterationConfig::default(),
            )),
            RfAlgorithm::Ekf => Backend::Ekf(EkfBackend::new(grid)),
        };
        WindowedRfEstimator {
            backend,
            last_fix: None,
            in_window: false,
            stats: WindowStats::default(),
        }
    }

    /// The algorithm this estimator runs.
    pub fn algorithm(&self) -> RfAlgorithm {
        self.backend.as_dyn().algorithm()
    }

    /// Starts a transmit window: window-reset backends throw their
    /// posterior away (paper Section 2.3), the EKF keeps its filter state,
    /// and beacon accumulation begins.
    pub fn begin_window(&mut self) {
        self.backend.as_dyn_mut().begin_window();
        self.in_window = true;
        self.stats.windows += 1;
    }

    /// Whether a window is currently open.
    pub fn in_window(&self) -> bool {
        self.in_window
    }

    /// Reports the robot's current dead-reckoned position so backends that
    /// integrate odometry between windows (the EKF) can run their
    /// prediction step. Call once per wake, before
    /// [`begin_window`](Self::begin_window); window-reset backends ignore
    /// it.
    pub fn note_odometry(&mut self, position: Point) {
        self.backend.as_dyn_mut().note_odometry(position);
    }

    /// Tells the estimator the odometry frame was just re-anchored to
    /// `fix` (CoCoA resets the dead-reckoning origin on every fresh fix),
    /// so odometry-integrating backends don't see the frame jump as
    /// motion.
    pub fn reanchor_odometry(&mut self, fix: Point) {
        self.backend.as_dyn_mut().reanchor_odometry(fix);
    }

    /// Offers one received beacon to the open window.
    ///
    /// Beacons arriving outside a window (e.g. stale deliveries right after
    /// the radio slept) are counted but ignored.
    pub fn observe_beacon(
        &mut self,
        table: &PdfTable,
        beacon_pos: Point,
        rssi: Dbm,
    ) -> ObservationResult {
        self.stats.beacons_seen += 1;
        if !self.in_window {
            return ObservationResult::Rejected;
        }
        let r = self
            .backend
            .as_dyn_mut()
            .observe_beacon(table, beacon_pos, rssi);
        self.account(r);
        r
    }

    /// Offers one received beacon, using the precomputed radial constraint
    /// cache for the Bayesian backend (the zero-allocation fast path).
    ///
    /// The gridless backends have no radial form and fall back to the PDF
    /// table, so the two arguments must describe the same calibration.
    pub fn observe_beacon_radial(
        &mut self,
        table: &PdfTable,
        radial: &RadialConstraintTable,
        beacon_pos: Point,
        rssi: Dbm,
    ) -> ObservationResult {
        self.stats.beacons_seen += 1;
        if !self.in_window {
            return ObservationResult::Rejected;
        }
        let r = self
            .backend
            .as_dyn_mut()
            .observe_beacon_radial(table, radial, beacon_pos, rssi);
        self.account(r);
        r
    }

    /// Folds one backend verdict into the lifetime statistics. Only the
    /// EKF backend ever returns [`ObservationResult::Outlier`] (its
    /// innovation gate); the shared claimed-distance gate accounts for its
    /// own rejections in
    /// [`observe_beacon_checked`](Self::observe_beacon_checked).
    fn account(&mut self, r: ObservationResult) {
        match r {
            ObservationResult::Applied => self.stats.beacons_applied += 1,
            ObservationResult::Outlier => self.stats.beacons_rejected_outlier += 1,
            ObservationResult::NoPdf | ObservationResult::Rejected => {}
        }
    }

    /// Offers one received beacon through the radial fast path, first
    /// screening it against an outlier gate.
    ///
    /// If `reference` is the robot's current position belief, the beacon's
    /// claimed position implies a distance to us; the observed RSSI implies
    /// another (the calibration PDF's mean). When the two disagree by more
    /// than `gate_m` metres the beacon is almost certainly corrupt or lying
    /// and is refused before any backend can be distorted by it. A `gate_m`
    /// of `0.0`, a missing reference, or an uncalibrated RSSI disables the
    /// check and the beacon flows through
    /// [`WindowedRfEstimator::observe_beacon_radial`] unchanged.
    pub fn observe_beacon_checked(
        &mut self,
        table: &PdfTable,
        radial: &RadialConstraintTable,
        beacon_pos: Point,
        rssi: Dbm,
        reference: Option<Point>,
        gate_m: f64,
    ) -> ObservationResult {
        if gate_m > 0.0 {
            if let (Some(refp), Some(pdf)) = (reference, table.lookup(rssi)) {
                let claimed = refp.distance_to(beacon_pos);
                if !claimed.is_finite() || (claimed - pdf.mean()).abs() > gate_m {
                    self.stats.beacons_seen += 1;
                    self.stats.beacons_rejected_outlier += 1;
                    return ObservationResult::Outlier;
                }
            }
        }
        self.observe_beacon_radial(table, radial, beacon_pos, rssi)
    }

    /// Closes the window. Returns the fresh fix if the window produced one
    /// (otherwise the previous fix remains in force and `None` is
    /// returned).
    pub fn end_window(&mut self) -> Option<Point> {
        match self.end_window_guarded(1.0) {
            WindowOutcome::Fix(fix) => Some(fix),
            WindowOutcome::FlatPosterior { .. } | WindowOutcome::NoFix => None,
        }
    }

    /// Closes the window with the entropy watchdog armed.
    ///
    /// A window that accumulated enough beacons normally yields a fix — but
    /// when the applied beacons were mutually contradictory (garbled
    /// coordinates, faulty sources) the posterior stays close to uniform
    /// and its mean is just the area centre. The watchdog vetoes such fixes:
    /// if the posterior entropy exceeds `watchdog_frac · max_entropy` the
    /// window reports [`WindowOutcome::FlatPosterior`], the previous fix is
    /// kept, and the caller degrades to dead reckoning.
    ///
    /// `watchdog_frac >= 1.0` disables the veto. Backends without a
    /// posterior ([`RfBackend::end_window_confidence`] returns `None`)
    /// never trip the watchdog.
    ///
    /// Fused pipelines must flush their pending beacons before the window
    /// is judged — use
    /// [`end_window_guarded_with`](Self::end_window_guarded_with) and pass
    /// the radial constraint table whenever the pipeline may be fused.
    pub fn end_window_guarded(&mut self, watchdog_frac: f64) -> WindowOutcome {
        self.end_window_guarded_with(watchdog_frac, None)
    }

    /// [`end_window_guarded`](Self::end_window_guarded), first committing
    /// any beacons a fused pipeline recorded during the window in one
    /// batched grid pass. `radial` must describe the same calibration the
    /// beacons were observed under; `None` is only correct for unfused
    /// pipelines (any pending beacons would be dropped).
    pub fn end_window_guarded_with(
        &mut self,
        watchdog_frac: f64,
        radial: Option<&RadialConstraintTable>,
    ) -> WindowOutcome {
        if let Some(radial) = radial {
            self.backend.as_dyn_mut().flush_pending(radial);
        }
        self.in_window = false;
        let Some(fix) = self.backend.as_dyn().estimate() else {
            return WindowOutcome::NoFix;
        };
        if watchdog_frac < 1.0 {
            if let Some((entropy, max_entropy)) = self.backend.as_dyn().end_window_confidence() {
                let threshold = watchdog_frac * max_entropy;
                if entropy > threshold {
                    self.stats.flat_windows += 1;
                    return WindowOutcome::FlatPosterior { entropy, threshold };
                }
            }
        }
        self.last_fix = Some(fix);
        self.stats.fixes += 1;
        WindowOutcome::Fix(fix)
    }

    /// The most recent fix, if any window ever produced one.
    pub fn last_fix(&self) -> Option<Point> {
        self.last_fix
    }

    /// Posterior entropy (confidence proxy for the relay-beaconing guard).
    /// Backends without a posterior report infinity.
    pub fn entropy(&self) -> f64 {
        self.backend.as_dyn().entropy()
    }

    /// Posterior entropy as a fraction of the uniform-grid maximum, in
    /// `[0, 1]` (1 = completely uninformative). `None` for backends without
    /// a posterior — telemetry timelines record it as null rather than a
    /// fake number.
    pub fn entropy_fraction(&self) -> Option<f64> {
        self.backend.as_dyn().entropy_fraction()
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> WindowStats {
        self.stats
    }

    /// EKF-only lifetime counters `(updates_applied, updates_gated)`;
    /// `None` for the other backends.
    pub fn ekf_counters(&self) -> Option<(u64, u64)> {
        self.backend.as_dyn().ekf_counters()
    }

    /// Kernel/fusion/adaptive accounting of the Bayesian backend (the
    /// `grid.*` telemetry counters). Zero for gridless backends.
    pub fn grid_stats(&self) -> GridStats {
        self.backend.as_dyn().grid_stats()
    }

    /// The active grid pipeline, if the Bayesian backend is running.
    pub fn pipeline(&self) -> Option<&GridPipeline> {
        self.backend.as_dyn().pipeline()
    }

    /// The estimator's complete state as checkpoint data: the lifecycle
    /// header plus the backend-tagged solver state (see
    /// [`BackendCheckpoint`]).
    pub fn checkpoint(&self) -> EstimatorCheckpoint {
        EstimatorCheckpoint {
            last_fix: self.last_fix,
            in_window: self.in_window,
            stats: self.stats,
            backend: self.backend.as_dyn().checkpoint(),
        }
    }

    /// Rebuilds an estimator from checkpointed state over `grid` (the same
    /// grid configuration the original was built with), under the default
    /// grid pipeline. The gridless backends are reconstructed with the
    /// default solver configuration, as
    /// [`WindowedRfEstimator::with_algorithm`] uses.
    pub fn from_checkpoint(grid: GridConfig, c: EstimatorCheckpoint) -> Self {
        Self::from_checkpoint_with(grid, GridPipeline::default(), c)
    }

    /// [`from_checkpoint`](Self::from_checkpoint) under an explicit grid
    /// pipeline — required for bit-identical resume of non-default kernel
    /// variants, since the pipeline decides which posterior representation
    /// and counters the checkpoint fields map onto.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint's posterior representation (dense cells vs
    /// adaptive tiles) does not match the pipeline's `adaptive` flag.
    pub fn from_checkpoint_with(
        grid: GridConfig,
        pipeline: GridPipeline,
        c: EstimatorCheckpoint,
    ) -> Self {
        let backend = match c.backend {
            BackendCheckpoint::Bayes {
                posterior_cells,
                adaptive_tiles,
                pending,
                grid_stats,
                beacons_applied,
                beacons_seen,
            } => {
                let mut b = BayesianLocalizer::with_pipeline(grid, pipeline);
                if pipeline.adaptive {
                    b.restore_posterior_tiles(adaptive_tiles);
                } else {
                    b.restore_posterior_cells(&posterior_cells);
                }
                b.restore_counters(beacons_applied, beacons_seen, pending, grid_stats);
                Backend::Bayes(Box::new(b))
            }
            BackendCheckpoint::Lateration { ranges } => {
                let mut l = Multilaterator::new(grid.area, MultilaterationConfig::default());
                l.restore_ranges(ranges);
                Backend::Lateration(l)
            }
            BackendCheckpoint::Ekf {
                filter,
                window_applied,
                last_odo,
            } => Backend::Ekf(EkfBackend::restore(grid, filter, window_applied, last_odo)),
        };
        WindowedRfEstimator {
            backend,
            last_fix: c.last_fix,
            in_window: c.in_window,
            stats: c.stats,
        }
    }
}

/// The windowed estimator's complete state as checkpoint data (see
/// [`WindowedRfEstimator::checkpoint`]): the lifecycle header shared by
/// every backend, plus the backend-tagged solver state.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimatorCheckpoint {
    /// The most recent trusted fix, if any.
    pub last_fix: Option<Point>,
    /// Whether a transmit window was open.
    pub in_window: bool,
    /// Lifetime statistics.
    pub stats: WindowStats,
    /// The solver's state, tagged by algorithm.
    pub backend: BackendCheckpoint,
}

impl EstimatorCheckpoint {
    /// Which backend algorithm was running.
    pub fn algorithm(&self) -> RfAlgorithm {
        self.backend.algorithm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocoa_net::calibration::{calibrate, CalibrationConfig};
    use cocoa_net::channel::RfChannel;
    use cocoa_net::geometry::Area;
    use cocoa_sim::rng::SeedSplitter;

    fn setup() -> (RfChannel, PdfTable, WindowedRfEstimator) {
        let ch = RfChannel::default();
        let mut rng = SeedSplitter::new(1).stream("cal", 0);
        let table = calibrate(&ch, &CalibrationConfig::default(), &mut rng);
        let est = WindowedRfEstimator::new(GridConfig::new(Area::square(200.0), 2.0));
        (ch, table, est)
    }

    #[test]
    fn window_with_too_few_beacons_keeps_old_fix() {
        let (ch, table, mut est) = setup();
        let mut rng = SeedSplitter::new(2).stream("t", 0);
        let robot = Point::new(100.0, 100.0);
        // First window: 3 beacons, get a fix.
        est.begin_window();
        for b in [
            Point::new(92.0, 100.0),
            Point::new(108.0, 104.0),
            Point::new(100.0, 92.0),
        ] {
            let rssi = ch.sample_rssi(robot.distance_to(b), &mut rng);
            est.observe_beacon(&table, b, rssi);
        }
        let fix1 = est.end_window().expect("fix");
        // Second window: only 1 beacon — no new fix, old one kept.
        est.begin_window();
        let rssi = ch.sample_rssi(10.0, &mut rng);
        est.observe_beacon(&table, Point::new(90.0, 100.0), rssi);
        assert_eq!(est.end_window(), None);
        assert_eq!(est.last_fix(), Some(fix1));
        assert_eq!(est.stats().windows, 2);
        assert_eq!(est.stats().fixes, 1);
    }

    #[test]
    fn beacons_outside_window_are_ignored() {
        let (ch, table, mut est) = setup();
        let mut rng = SeedSplitter::new(3).stream("t", 0);
        let rssi = ch.sample_rssi(10.0, &mut rng);
        let r = est.observe_beacon(&table, Point::new(90.0, 100.0), rssi);
        assert_eq!(r, ObservationResult::Rejected);
        assert_eq!(est.stats().beacons_seen, 1);
        assert_eq!(est.stats().beacons_applied, 0);
        assert!(est.last_fix().is_none());
    }

    #[test]
    fn each_window_starts_fresh() {
        let (ch, table, mut est) = setup();
        let mut rng = SeedSplitter::new(4).stream("t", 0);
        let robot = Point::new(60.0, 60.0);
        let beacons = [
            Point::new(52.0, 60.0),
            Point::new(68.0, 64.0),
            Point::new(60.0, 52.0),
        ];
        est.begin_window();
        for b in beacons {
            let rssi = ch.sample_rssi(robot.distance_to(b), &mut rng);
            est.observe_beacon(&table, b, rssi);
        }
        est.end_window().expect("fix 1");
        // Next window near a different location converges there, not to a
        // blend — proof the posterior was discarded.
        let robot2 = Point::new(150.0, 150.0);
        let beacons2 = [
            Point::new(142.0, 150.0),
            Point::new(158.0, 154.0),
            Point::new(150.0, 142.0),
        ];
        est.begin_window();
        for b in beacons2 {
            let rssi = ch.sample_rssi(robot2.distance_to(b), &mut rng);
            est.observe_beacon(&table, b, rssi);
        }
        let fix2 = est.end_window().expect("fix 2");
        assert!(fix2.distance_to(robot2) < 20.0, "fix2 {fix2}");
    }

    #[test]
    fn outlier_gate_refuses_inconsistent_beacons() {
        let (ch, table, mut est) = setup();
        let radial = crate::bayes::radial_constraints_for_grid(
            &table,
            &GridConfig::new(Area::square(200.0), 2.0),
        );
        est.begin_window();
        let reference = Some(Point::new(100.0, 100.0));
        // The beacon claims to be 5 m away, but its RSSI says ~80 m: a
        // corrupted coordinate field.
        let lying_rssi = ch.mean_rssi(80.0);
        let r = est.observe_beacon_checked(
            &table,
            &radial,
            Point::new(105.0, 100.0),
            lying_rssi,
            reference,
            40.0,
        );
        assert_eq!(r, ObservationResult::Outlier);
        assert_eq!(est.stats().beacons_rejected_outlier, 1);
        assert_eq!(est.stats().beacons_applied, 0);
        // A consistent beacon passes the gate.
        let honest_rssi = ch.mean_rssi(5.0);
        let r = est.observe_beacon_checked(
            &table,
            &radial,
            Point::new(105.0, 100.0),
            honest_rssi,
            reference,
            40.0,
        );
        assert_eq!(r, ObservationResult::Applied);
        // Gate 0.0 disables the check entirely.
        let r = est.observe_beacon_checked(
            &table,
            &radial,
            Point::new(105.0, 100.0),
            lying_rssi,
            reference,
            0.0,
        );
        assert_ne!(r, ObservationResult::Outlier);
    }

    #[test]
    fn shared_outlier_gate_screens_the_ekf_backend_too() {
        // Satellite of the backend refactor: the claimed-distance gate
        // must fire *before* the backend, so a lying beacon never reaches
        // the EKF's innovation machinery (whose own gate would otherwise
        // be the only line of defence, and which a vague filter leaves
        // wide open).
        let (ch, table, _) = setup();
        let grid = GridConfig::new(Area::square(200.0), 2.0);
        let radial = crate::bayes::radial_constraints_for_grid(&table, &grid);
        let mut est = WindowedRfEstimator::with_algorithm(grid, RfAlgorithm::Ekf);
        assert_eq!(est.algorithm(), RfAlgorithm::Ekf);
        est.begin_window();
        let reference = Some(Point::new(100.0, 100.0));
        let lying_rssi = ch.mean_rssi(80.0);
        let r = est.observe_beacon_checked(
            &table,
            &radial,
            Point::new(105.0, 100.0),
            lying_rssi,
            reference,
            40.0,
        );
        assert_eq!(r, ObservationResult::Outlier);
        assert_eq!(est.stats().beacons_rejected_outlier, 1);
        // The filter saw nothing: neither an applied nor a gated update.
        assert_eq!(est.ekf_counters(), Some((0, 0)));
        // An honest beacon passes the gate and reaches the filter.
        let honest_rssi = ch.mean_rssi(5.0);
        let r = est.observe_beacon_checked(
            &table,
            &radial,
            Point::new(105.0, 100.0),
            honest_rssi,
            reference,
            40.0,
        );
        assert_eq!(r, ObservationResult::Applied);
        assert_eq!(est.ekf_counters(), Some((1, 0)));
    }

    #[test]
    fn ekf_estimator_produces_fixes_and_carries_state() {
        let (ch, table, _) = setup();
        let grid = GridConfig::new(Area::square(200.0), 2.0);
        let mut est = WindowedRfEstimator::with_algorithm(grid, RfAlgorithm::Ekf);
        let mut rng = SeedSplitter::new(7).stream("t", 0);
        let robot = Point::new(100.0, 100.0);
        let beacons = [
            Point::new(92.0, 100.0),
            Point::new(108.0, 104.0),
            Point::new(100.0, 92.0),
            Point::new(110.0, 96.0),
        ];
        let mut fix = None;
        for _ in 0..4 {
            est.note_odometry(robot);
            est.begin_window();
            for b in beacons {
                let rssi = ch.sample_rssi(robot.distance_to(b), &mut rng);
                est.observe_beacon(&table, b, rssi);
            }
            fix = est.end_window().or(fix);
        }
        let fix = fix.expect("four windows of four beacons must fix");
        assert!(fix.distance_to(robot) < 25.0, "fix {fix}");
        assert!(est.stats().fixes >= 1);
        // The EKF has no posterior: entropy is the no-confidence sentinel.
        assert_eq!(est.entropy(), f64::INFINITY);
        assert_eq!(est.entropy_fraction(), None);
        assert_eq!(est.pipeline(), None);
    }

    #[test]
    fn checkpoints_round_trip_for_every_algorithm() {
        let (ch, table, _) = setup();
        let grid = GridConfig::new(Area::square(200.0), 2.0);
        let mut rng = SeedSplitter::new(8).stream("t", 0);
        let robot = Point::new(80.0, 120.0);
        for algorithm in RfAlgorithm::ALL {
            let mut est = WindowedRfEstimator::with_algorithm(grid, algorithm);
            est.note_odometry(Point::new(79.0, 119.0));
            est.begin_window();
            for b in [
                Point::new(72.0, 120.0),
                Point::new(88.0, 124.0),
                Point::new(80.0, 112.0),
            ] {
                let rssi = ch.sample_rssi(robot.distance_to(b), &mut rng);
                est.observe_beacon(&table, b, rssi);
            }
            est.end_window();
            est.begin_window(); // leave a window open: in_window must survive
            let c = est.checkpoint();
            assert_eq!(c.algorithm(), algorithm);
            let restored = WindowedRfEstimator::from_checkpoint(grid, c);
            assert_eq!(restored, est, "{algorithm}: restore must be exact");
        }
    }

    #[test]
    fn entropy_watchdog_vetoes_flat_posteriors() {
        let (ch, table, mut est) = setup();
        let mut rng = SeedSplitter::new(9).stream("t", 0);
        let robot = Point::new(100.0, 100.0);
        let beacons = [
            Point::new(92.0, 100.0),
            Point::new(108.0, 104.0),
            Point::new(100.0, 92.0),
        ];
        est.begin_window();
        for b in beacons {
            let rssi = ch.sample_rssi(robot.distance_to(b), &mut rng);
            est.observe_beacon(&table, b, rssi);
        }
        // An absurdly strict watchdog treats even a good posterior as flat:
        // the fix is vetoed and the previous (absent) fix kept.
        match est.end_window_guarded(1e-6) {
            WindowOutcome::FlatPosterior { entropy, threshold } => {
                assert!(entropy > threshold);
            }
            other => panic!("expected flat-posterior veto, got {other:?}"),
        }
        assert_eq!(est.last_fix(), None);
        assert_eq!(est.stats().flat_windows, 1);
        assert_eq!(est.stats().fixes, 0);
        // The same beacons with the watchdog disabled produce a fix.
        est.begin_window();
        for b in beacons {
            let rssi = ch.sample_rssi(robot.distance_to(b), &mut rng);
            est.observe_beacon(&table, b, rssi);
        }
        assert!(matches!(est.end_window_guarded(1.0), WindowOutcome::Fix(_)));
        assert_eq!(est.stats().fixes, 1);
    }

    #[test]
    fn mode_properties() {
        assert!(!EstimatorMode::OdometryOnly.uses_rf());
        assert!(EstimatorMode::RfOnly.uses_rf());
        assert!(EstimatorMode::Cocoa.uses_rf());
        assert!(EstimatorMode::Cocoa.uses_odometry_between_windows());
        assert!(!EstimatorMode::RfOnly.uses_odometry_between_windows());
        assert_eq!(EstimatorMode::Cocoa.to_string(), "cocoa");
        assert_eq!(RfAlgorithm::Ekf.to_string(), "ekf");
    }
}
