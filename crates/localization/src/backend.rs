//! The pluggable per-window RF solver behind the windowed estimator.
//!
//! The paper notes (Section 5) that CoCoA "is not tied to a specific
//! localization technique. … Other approaches could be integrated in CoCoA
//! as well". This module is that extension point: the window *lifecycle*
//! (begin/observe/end, entropy watchdog, outlier gate, statistics) lives in
//! [`crate::estimator::WindowedRfEstimator`]; the per-window *solver* lives
//! behind [`RfBackend`] with three implementations:
//!
//! - [`BayesianLocalizer`] — the paper's grid inference (the default);
//! - [`Multilaterator`] — weighted least-squares multilateration;
//! - [`EkfBackend`] — the extended Kalman filter, predicting from odometry
//!   between windows and fusing gated range updates from beacon RSSI.
//!
//! The first two discard their state at every window start (the paper's
//! reset-style fusion); the EKF is the deliberate exception — it carries
//! its posterior across windows and only resets its per-window beacon
//! count, which is what makes it a genuinely different estimator rather
//! than a reskinned solver.

use serde::{Deserialize, Serialize};

use cocoa_net::calibration::{PdfTable, RadialConstraintTable};
use cocoa_net::geometry::Point;
use cocoa_net::rssi::{Dbm, RssiBin};

use crate::adaptive::Tile;
use crate::bayes::{
    BayesianLocalizer, GridStats, ObservationResult, Posterior, MIN_BEACONS_FOR_ESTIMATE,
};
use crate::ekf::{EkfConfig, EkfLocalizer, EkfSnapshot, EkfUpdate};
use crate::estimator::RfAlgorithm;
use crate::grid::GridConfig;
use crate::kernel::GridPipeline;
use crate::multilateration::{Multilaterator, RangeObservation};

/// One per-window RF solver, as driven by the window lifecycle in
/// [`crate::estimator::WindowedRfEstimator`].
///
/// | Method | Bayes | Multilateration | EKF |
/// |---|---|---|---|
/// | `begin_window` | discard posterior | discard ranges | reset window count only |
/// | `observe_beacon*` | grid constraint | collect range | gated IEKF range update |
/// | `estimate` | posterior mean (≥ 3 beacons) | WLS solution (≥ 3 ranges) | filter state (≥ 3 applied this window) |
/// | `end_window_confidence` | entropy vs maximum | none | none |
/// | `note_odometry` | — | — | covariance-growing predict |
/// | `checkpoint` | posterior + counters | ranges | state, covariance, gate counters |
pub trait RfBackend {
    /// Which algorithm this backend implements.
    fn algorithm(&self) -> RfAlgorithm;

    /// Called at every transmit-window start, before beacons arrive.
    fn begin_window(&mut self);

    /// Offers one received beacon through the PDF-table path.
    fn observe_beacon(
        &mut self,
        table: &PdfTable,
        beacon_pos: Point,
        rssi: Dbm,
    ) -> ObservationResult;

    /// Offers one received beacon through the precomputed radial constraint
    /// cache (the zero-allocation fast path). Backends without a radial
    /// form fall back to the PDF table, so the two arguments must describe
    /// the same calibration.
    fn observe_beacon_radial(
        &mut self,
        table: &PdfTable,
        radial: &RadialConstraintTable,
        beacon_pos: Point,
        rssi: Dbm,
    ) -> ObservationResult;

    /// Commits beacons a fused pipeline recorded during the window in one
    /// batched pass. A no-op for backends without a fused pipeline.
    fn flush_pending(&mut self, _radial: &RadialConstraintTable) {}

    /// The solver's position estimate at window end, if this window
    /// gathered enough evidence for one.
    fn estimate(&self) -> Option<Point>;

    /// `(entropy, max_entropy)` of the window's posterior, for the entropy
    /// watchdog. `None` means the backend has no posterior to judge and the
    /// watchdog never fires.
    fn end_window_confidence(&self) -> Option<(f64, f64)> {
        None
    }

    /// Posterior entropy (confidence proxy for the relay-beaconing guard);
    /// infinity for backends without a posterior.
    fn entropy(&self) -> f64 {
        f64::INFINITY
    }

    /// Posterior entropy as a fraction of the uniform maximum, in `[0, 1]`;
    /// `None` for backends without a posterior.
    fn entropy_fraction(&self) -> Option<f64> {
        None
    }

    /// Reports the robot's current dead-reckoned position so backends that
    /// integrate odometry between windows (the EKF) can run their
    /// prediction step. A no-op for window-reset backends.
    fn note_odometry(&mut self, _position: Point) {}

    /// Tells the backend the odometry frame was just re-anchored to `fix`
    /// (CoCoA resets the dead-reckoning origin on every fresh fix), so the
    /// next [`RfBackend::note_odometry`] measures displacement from the new
    /// frame instead of seeing a spurious jump.
    fn reanchor_odometry(&mut self, _fix: Point) {}

    /// EKF-only lifetime counters `(updates_applied, updates_gated)`, for
    /// the `estimator.ekf.*` telemetry namespace.
    fn ekf_counters(&self) -> Option<(u64, u64)> {
        None
    }

    /// Kernel/fusion/adaptive accounting (the `grid.*` telemetry
    /// counters). Zero for gridless backends.
    fn grid_stats(&self) -> GridStats {
        GridStats::default()
    }

    /// The active grid pipeline, if the backend runs one.
    fn pipeline(&self) -> Option<&GridPipeline> {
        None
    }

    /// The backend's complete state as checkpoint data.
    fn checkpoint(&self) -> BackendCheckpoint;
}

/// One backend's complete state as checkpoint data, tagged by algorithm
/// (the snapshot codec's v4 estimator section mirrors this shape).
#[derive(Debug, Clone, PartialEq)]
pub enum BackendCheckpoint {
    /// [`BayesianLocalizer`] state. Dense pipelines fill
    /// `posterior_cells`; the adaptive pipeline fills `adaptive_tiles`.
    Bayes {
        /// Posterior cell probabilities (dense pipelines; empty otherwise).
        posterior_cells: Vec<f64>,
        /// Posterior tile state (adaptive pipeline; empty otherwise).
        adaptive_tiles: Vec<Tile>,
        /// Recorded-but-unflushed fused beacons.
        pending: Vec<(Point, RssiBin)>,
        /// Kernel/fusion/adaptive accounting.
        grid_stats: GridStats,
        /// Beacons applied since the last window reset.
        beacons_applied: u32,
        /// Beacons offered since the last window reset.
        beacons_seen: u32,
    },
    /// [`Multilaterator`] state: the collected ranges.
    Lateration {
        /// Range observations of the open window.
        ranges: Vec<RangeObservation>,
    },
    /// [`EkfBackend`] state: the filter plus its window bookkeeping.
    Ekf {
        /// Filter state, covariance and gate counters.
        filter: EkfSnapshot,
        /// Range updates applied in the open window.
        window_applied: u32,
        /// The dead-reckoned position at the last prediction step.
        last_odo: Option<Point>,
    },
}

impl BackendCheckpoint {
    /// Which algorithm produced this checkpoint.
    pub fn algorithm(&self) -> RfAlgorithm {
        match self {
            BackendCheckpoint::Bayes { .. } => RfAlgorithm::Bayes,
            BackendCheckpoint::Lateration { .. } => RfAlgorithm::Multilateration,
            BackendCheckpoint::Ekf { .. } => RfAlgorithm::Ekf,
        }
    }
}

impl RfBackend for BayesianLocalizer {
    fn algorithm(&self) -> RfAlgorithm {
        RfAlgorithm::Bayes
    }

    fn begin_window(&mut self) {
        self.reset();
    }

    fn observe_beacon(
        &mut self,
        table: &PdfTable,
        beacon_pos: Point,
        rssi: Dbm,
    ) -> ObservationResult {
        BayesianLocalizer::observe_beacon(self, table, beacon_pos, rssi)
    }

    fn observe_beacon_radial(
        &mut self,
        _table: &PdfTable,
        radial: &RadialConstraintTable,
        beacon_pos: Point,
        rssi: Dbm,
    ) -> ObservationResult {
        BayesianLocalizer::observe_beacon_radial(self, radial, beacon_pos, rssi)
    }

    fn flush_pending(&mut self, radial: &RadialConstraintTable) {
        BayesianLocalizer::flush_pending(self, radial);
    }

    fn estimate(&self) -> Option<Point> {
        BayesianLocalizer::estimate(self)
    }

    fn end_window_confidence(&self) -> Option<(f64, f64)> {
        Some((BayesianLocalizer::entropy(self), self.max_entropy()))
    }

    fn entropy(&self) -> f64 {
        BayesianLocalizer::entropy(self)
    }

    fn entropy_fraction(&self) -> Option<f64> {
        let max = self.max_entropy();
        if max > 0.0 {
            Some(BayesianLocalizer::entropy(self) / max)
        } else {
            Some(0.0)
        }
    }

    fn grid_stats(&self) -> GridStats {
        *BayesianLocalizer::grid_stats(self)
    }

    fn pipeline(&self) -> Option<&GridPipeline> {
        Some(BayesianLocalizer::pipeline(self))
    }

    fn checkpoint(&self) -> BackendCheckpoint {
        let (cells, tiles) = match self.posterior() {
            Posterior::Dense(g) => (g.cells().to_vec(), Vec::new()),
            Posterior::Adaptive(g) => (Vec::new(), g.tiles().to_vec()),
        };
        BackendCheckpoint::Bayes {
            posterior_cells: cells,
            adaptive_tiles: tiles,
            pending: self.pending().to_vec(),
            grid_stats: *BayesianLocalizer::grid_stats(self),
            beacons_applied: self.beacons_applied(),
            beacons_seen: self.beacons_seen(),
        }
    }
}

impl RfBackend for Multilaterator {
    fn algorithm(&self) -> RfAlgorithm {
        RfAlgorithm::Multilateration
    }

    fn begin_window(&mut self) {
        self.reset();
    }

    fn observe_beacon(
        &mut self,
        table: &PdfTable,
        beacon_pos: Point,
        rssi: Dbm,
    ) -> ObservationResult {
        if Multilaterator::observe_beacon(self, table, beacon_pos, rssi) {
            ObservationResult::Applied
        } else {
            ObservationResult::NoPdf
        }
    }

    fn observe_beacon_radial(
        &mut self,
        table: &PdfTable,
        _radial: &RadialConstraintTable,
        beacon_pos: Point,
        rssi: Dbm,
    ) -> ObservationResult {
        RfBackend::observe_beacon(self, table, beacon_pos, rssi)
    }

    fn estimate(&self) -> Option<Point> {
        Multilaterator::estimate(self)
    }

    fn checkpoint(&self) -> BackendCheckpoint {
        BackendCheckpoint::Lateration {
            ranges: self.ranges().to_vec(),
        }
    }
}

/// The EKF solver adapted to the window lifecycle.
///
/// Wraps [`EkfLocalizer`] with the bookkeeping the windowed protocol needs:
/// a per-window applied-update count (a window yields a fix only when at
/// least [`MIN_BEACONS_FOR_ESTIMATE`] updates were fused, matching the
/// other backends' evidence bar) and the odometry anchor that turns the
/// robot's dead-reckoned positions into displacement inputs for the
/// filter's prediction step.
///
/// Unlike the reset-style backends the filter state *persists across
/// windows* — that continuity is the EKF's whole value proposition — and
/// its innovation gate maps to [`ObservationResult::Outlier`], so gated
/// beacons land in the same `beacons_rejected_outlier` statistic the shared
/// outlier gate feeds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EkfBackend {
    ekf: EkfLocalizer,
    /// Dead-reckoned position at the last `note_odometry`, i.e. the origin
    /// the next displacement is measured from.
    last_odo: Option<Point>,
    /// Range updates applied in the open window.
    window_applied: u32,
}

impl EkfBackend {
    /// Creates an EKF backend over `grid`'s deployment area with the
    /// default filter tuning (the paper's arbitrary-deployment prior: area
    /// centre, large sigma).
    pub fn new(grid: GridConfig) -> Self {
        EkfBackend {
            ekf: EkfLocalizer::new(EkfConfig::default(), grid.area, None),
            last_odo: None,
            window_applied: 0,
        }
    }

    /// The wrapped filter.
    pub fn filter(&self) -> &EkfLocalizer {
        &self.ekf
    }

    /// Rebuilds the backend from checkpointed state.
    pub fn restore(
        grid: GridConfig,
        filter: EkfSnapshot,
        window_applied: u32,
        last_odo: Option<Point>,
    ) -> Self {
        let mut ekf = EkfLocalizer::new(EkfConfig::default(), grid.area, None);
        ekf.restore_snapshot(filter);
        EkfBackend {
            ekf,
            last_odo,
            window_applied,
        }
    }

    fn fuse(&mut self, table: &PdfTable, beacon_pos: Point, rssi: Dbm) -> ObservationResult {
        match self.ekf.update_from_beacon(table, beacon_pos, rssi) {
            EkfUpdate::Applied => {
                self.window_applied += 1;
                ObservationResult::Applied
            }
            EkfUpdate::Gated => ObservationResult::Outlier,
            EkfUpdate::NoPdf => ObservationResult::NoPdf,
        }
    }
}

impl RfBackend for EkfBackend {
    fn algorithm(&self) -> RfAlgorithm {
        RfAlgorithm::Ekf
    }

    fn begin_window(&mut self) {
        // The filter deliberately carries its state across windows; only
        // the per-window evidence count restarts.
        self.window_applied = 0;
    }

    fn observe_beacon(
        &mut self,
        table: &PdfTable,
        beacon_pos: Point,
        rssi: Dbm,
    ) -> ObservationResult {
        self.fuse(table, beacon_pos, rssi)
    }

    fn observe_beacon_radial(
        &mut self,
        table: &PdfTable,
        _radial: &RadialConstraintTable,
        beacon_pos: Point,
        rssi: Dbm,
    ) -> ObservationResult {
        self.fuse(table, beacon_pos, rssi)
    }

    fn estimate(&self) -> Option<Point> {
        (self.window_applied >= MIN_BEACONS_FOR_ESTIMATE).then(|| self.ekf.estimate())
    }

    fn note_odometry(&mut self, position: Point) {
        if let Some(prev) = self.last_odo {
            self.ekf.predict(position - prev);
        }
        self.last_odo = Some(position);
    }

    fn reanchor_odometry(&mut self, fix: Point) {
        self.last_odo = Some(fix);
    }

    fn ekf_counters(&self) -> Option<(u64, u64)> {
        Some((self.ekf.updates_applied(), self.ekf.updates_gated()))
    }

    fn checkpoint(&self) -> BackendCheckpoint {
        BackendCheckpoint::Ekf {
            filter: self.ekf.snapshot(),
            window_applied: self.window_applied,
            last_odo: self.last_odo,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocoa_net::calibration::{calibrate, CalibrationConfig};
    use cocoa_net::channel::RfChannel;
    use cocoa_net::geometry::{Area, Vec2};
    use cocoa_sim::rng::SeedSplitter;

    fn table() -> (RfChannel, PdfTable) {
        let ch = RfChannel::default();
        let mut rng = SeedSplitter::new(1).stream("cal", 0);
        let table = calibrate(&ch, &CalibrationConfig::default(), &mut rng);
        (ch, table)
    }

    #[test]
    fn ekf_backend_persists_state_across_windows() {
        let (ch, table) = table();
        let mut rng = SeedSplitter::new(4).stream("b", 0);
        let grid = GridConfig::new(Area::square(200.0), 2.0);
        let mut b = EkfBackend::new(grid);
        let robot = Point::new(100.0, 100.0);
        let beacons = [
            Point::new(92.0, 100.0),
            Point::new(108.0, 104.0),
            Point::new(100.0, 92.0),
        ];
        for _ in 0..3 {
            RfBackend::begin_window(&mut b);
            for p in beacons {
                let rssi = ch.sample_rssi(robot.distance_to(p), &mut rng);
                RfBackend::observe_beacon(&mut b, &table, p, rssi);
            }
        }
        // Window resets did not throw the filter away: nine updates fused.
        assert_eq!(b.filter().updates_applied(), 9);
        let before = b.filter().estimate();
        RfBackend::begin_window(&mut b);
        assert_eq!(
            b.filter().estimate(),
            before,
            "window start must not move the filter state"
        );
        // But the fresh window has no evidence yet, so no fix.
        assert_eq!(RfBackend::estimate(&b), None);
    }

    #[test]
    fn ekf_backend_requires_three_applied_updates_per_window() {
        let (ch, table) = table();
        let mut rng = SeedSplitter::new(5).stream("b", 0);
        let mut b = EkfBackend::new(GridConfig::new(Area::square(200.0), 2.0));
        let robot = Point::new(100.0, 100.0);
        RfBackend::begin_window(&mut b);
        for p in [Point::new(92.0, 100.0), Point::new(108.0, 104.0)] {
            let rssi = ch.sample_rssi(robot.distance_to(p), &mut rng);
            RfBackend::observe_beacon(&mut b, &table, p, rssi);
        }
        assert_eq!(RfBackend::estimate(&b), None, "two beacons are not enough");
        let p = Point::new(100.0, 92.0);
        let rssi = ch.sample_rssi(robot.distance_to(p), &mut rng);
        RfBackend::observe_beacon(&mut b, &table, p, rssi);
        assert!(RfBackend::estimate(&b).is_some());
    }

    #[test]
    fn ekf_backend_predicts_between_odometry_anchors() {
        let mut b = EkfBackend::new(GridConfig::new(Area::square(200.0), 2.0));
        // First anchor establishes the frame without predicting.
        b.note_odometry(Point::new(50.0, 50.0));
        let before = b.filter().estimate();
        let unc_before = b.filter().uncertainty();
        // Second anchor 10 m east: the filter moves with the displacement
        // and its uncertainty grows.
        b.note_odometry(Point::new(60.0, 50.0));
        let after = b.filter().estimate();
        assert!((after.x - (before.x + 10.0)).abs() < 1e-9);
        assert!(b.filter().uncertainty() > unc_before);
        // Re-anchoring swallows the frame jump: no displacement is seen.
        b.reanchor_odometry(Point::new(120.0, 120.0));
        let est = b.filter().estimate();
        b.note_odometry(Point::new(120.0, 120.0));
        assert_eq!(b.filter().estimate(), est);
    }

    #[test]
    fn ekf_gated_update_reports_outlier() {
        let (ch, table) = table();
        let mut rng = SeedSplitter::new(6).stream("b", 0);
        let mut b = EkfBackend::new(GridConfig::new(Area::square(200.0), 2.0));
        let robot = Point::new(100.0, 100.0);
        let beacons = [
            Point::new(92.0, 100.0),
            Point::new(108.0, 104.0),
            Point::new(100.0, 92.0),
        ];
        RfBackend::begin_window(&mut b);
        for _ in 0..3 {
            for p in beacons {
                let rssi = ch.sample_rssi(robot.distance_to(p), &mut rng);
                RfBackend::observe_beacon(&mut b, &table, p, rssi);
            }
        }
        // A beacon whose RSSI says "far away" while standing next to the
        // converged filter fails the innovation gate.
        let ghost = ch.mean_rssi(150.0);
        let r = RfBackend::observe_beacon(&mut b, &table, Point::new(101.0, 100.0), ghost);
        assert_eq!(r, ObservationResult::Outlier);
        assert!(b.filter().updates_gated() >= 1);
    }

    #[test]
    fn backend_checkpoints_tag_their_algorithm() {
        let grid = GridConfig::new(Area::square(200.0), 4.0);
        let bayes = BayesianLocalizer::new(grid);
        let lat = Multilaterator::new(grid.area, Default::default());
        let mut ekf = EkfBackend::new(grid);
        ekf.note_odometry(Point::new(10.0, 10.0));
        ekf.ekf.predict(Vec2::new(1.0, 0.0));
        assert_eq!(
            RfBackend::checkpoint(&bayes).algorithm(),
            RfAlgorithm::Bayes
        );
        assert_eq!(
            RfBackend::checkpoint(&lat).algorithm(),
            RfAlgorithm::Multilateration
        );
        let c = RfBackend::checkpoint(&ekf);
        assert_eq!(c.algorithm(), RfAlgorithm::Ekf);
        let BackendCheckpoint::Ekf {
            filter,
            window_applied,
            last_odo,
        } = c
        else {
            panic!("expected an EKF checkpoint");
        };
        let restored = EkfBackend::restore(grid, filter, window_applied, last_odo);
        assert_eq!(restored, ekf);
    }
}
