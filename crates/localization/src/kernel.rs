//! Lane-packed grid-update kernels and the grid pipeline configuration.
//!
//! The Bayesian grid update is the per-robot hot path: every beacon
//! multiplies a radial constraint into a 10⁴-cell posterior. This module
//! holds the inner loops of that update on stable Rust with no
//! dependencies, no `unsafe`, and no `std::simd` — the loops are *shaped*
//! so LLVM's auto-vectorizer turns every step, including the profile
//! table lookup, into packed instructions (`vsqrtpd`/`vgatherqpd`/FMA on
//! AVX-512 with `-C target-cpu=native`).
//!
//! Three tricks make the whole loop vectorizable where a naive
//! formulation stays scalar:
//!
//! 1. **No int casts.** Rust's saturating `f64 as usize` blocks the loop
//!    vectorizer outright. The lattice coordinate is clamped in the
//!    *float* domain (`t.min(lastf)` — `t` is non-negative by
//!    construction) and converted to an index with the 2⁵² magic-bias
//!    trick: for integer-valued `tf ∈ [0, 2⁵²)`, the low mantissa bits of
//!    `tf + 2⁵²` are exactly `tf`, so `(tf + P52).to_bits() & mask` is a
//!    pure add/bitcast/and chain.
//! 2. **Power-of-two padded SoA tables** ([`LaneTable`]): `& mask`
//!    indexing lets the optimizer prove in-bounds without per-lane branch
//!    checks, and 8-byte elements are what hardware gathers load.
//! 3. **`#[inline(never)]`.** Inlined into a large caller frame the same
//!    loop fails vectorization; keeping the kernel a standalone function
//!    preserves the codegen. (At ~10⁴ iterations per call the call cost
//!    is noise.)
//!
//! # Bit-identity contract
//!
//! [`radial_product_row`] computes, per cell, the exact value the scalar
//! reference path ([`PositionGrid::apply_radial_constraint`]) computes —
//! `cell · lerp(profile, √(dx² + dy²) / step)`. The delta table caches
//! `fl(v[i+1] − v[i])`, the very difference the scalar path evaluates
//! inline; in the interior the float-clamped coordinate and fraction are
//! the same values the scalar index computation produces, and in the
//! clamp region both paths multiply a non-negative finite fraction by the
//! zero sentinel delta, adding an exact `+0.0`. The f64 lane kernel is
//! therefore **bit-identical** to the scalar path cell for cell for every
//! finite lattice coordinate — i.e. any physically representable
//! geometry. (An infinite coordinate needs cell-to-beacon distances
//! beyond ~1e154 m; there the scalar path propagates NaN while the lane
//! kernel clamps.) That is what lets [`GridKernel::Simd`] be the default
//! while pinned-seed golden traces stay byte-identical.
//!
//! The f32 kernel trades that contract for twice the lane width: distances
//! and interpolation run in f32 and only the posterior multiply widens
//! back to f64. Its per-cell error is bounded by [`F32_KERNEL_REL_BOUND`]
//! (pinned by proptest) relative to the profile's peak value.
//!
//! [`PositionGrid::apply_radial_constraint`]: crate::grid::PositionGrid::apply_radial_constraint

use cocoa_net::calibration::{LaneTable, LaneTable32};
use serde::{Deserialize, Serialize};

/// How the radial constraint inner loop is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum GridKernel {
    /// The reference two-stage scalar loop (pre-refactor behaviour).
    Scalar,
    /// The hand-unrolled lane-packed kernel (bit-identical in f64).
    #[default]
    Simd,
}

impl std::fmt::Display for GridKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            GridKernel::Scalar => "scalar",
            GridKernel::Simd => "simd",
        })
    }
}

/// Arithmetic width of the lane-packed kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum GridPrecision {
    /// Full f64 lanes — bit-identical to the scalar reference path.
    #[default]
    F64,
    /// f32 lanes (twice the width); posterior cells stay f64. Per-cell
    /// error is bounded by [`F32_KERNEL_REL_BOUND`] × the profile's peak.
    F32,
}

impl std::fmt::Display for GridPrecision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            GridPrecision::F64 => "f64",
            GridPrecision::F32 => "f32",
        })
    }
}

/// Documented per-cell error bound of the f32 kernel, relative to the
/// profile's maximum sample value (pinned by the
/// `f32_kernel_within_documented_bound` proptest).
pub const F32_KERNEL_REL_BOUND: f64 = 5e-4;

/// The complete grid-update pipeline selection: kernel, precision, beacon
/// fusion and adaptive resolution. Lives on the `Scenario` and is plumbed
/// into every Bayesian estimator; [`GridPipeline::default`] reproduces the
/// pre-pipeline behaviour bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridPipeline {
    /// Inner-loop implementation.
    pub kernel: GridKernel,
    /// Lane arithmetic width.
    pub precision: GridPrecision,
    /// Batch every beacon of a transmit window into one pass over the
    /// posterior (one renormalize per window instead of one per beacon).
    pub fused: bool,
    /// Maintain the posterior at coarse resolution and refine only tiles
    /// holding appreciable mass (see `AdaptiveGrid`).
    pub adaptive: bool,
    /// Adaptive mode: fine cells per coarse-tile side (≥ 1; 4 ⇒ one tile
    /// covers up to 16 fine cells).
    pub adaptive_coarse_factor: u32,
    /// Adaptive mode: a tile is refined when its mass exceeds this factor
    /// times the uniform tile mass, and collapsed again below its inverse.
    /// Must exceed 1.
    pub adaptive_refine_factor: f64,
}

impl Default for GridPipeline {
    fn default() -> Self {
        GridPipeline {
            kernel: GridKernel::Simd,
            precision: GridPrecision::F64,
            fused: false,
            adaptive: false,
            adaptive_coarse_factor: 4,
            adaptive_refine_factor: 2.0,
        }
    }
}

impl GridPipeline {
    /// Validates cross-field invariants.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.adaptive_coarse_factor == 0 {
            return Err("adaptive coarse factor must be at least 1".into());
        }
        if !self.adaptive_refine_factor.is_finite() || self.adaptive_refine_factor <= 1.0 {
            return Err(format!(
                "adaptive refine factor {} must be finite and exceed 1",
                self.adaptive_refine_factor
            ));
        }
        Ok(())
    }

    /// Short name of the active kernel variant, for telemetry counters.
    pub fn variant_name(&self) -> &'static str {
        if self.adaptive {
            "adaptive"
        } else {
            match (self.kernel, self.precision) {
                (GridKernel::Scalar, _) => "scalar",
                (GridKernel::Simd, GridPrecision::F64) => "simd",
                (GridKernel::Simd, GridPrecision::F32) => "simd_f32",
            }
        }
    }
}

/// 2⁵² — the magic bias for branchless f64 → index extraction: for an
/// integer-valued `tf` in `[0, 2⁵²)`, the low mantissa bits of `tf + P52`
/// are exactly `tf`.
const P52: f64 = 4503599627370496.0;

/// 2²³ — the f32 counterpart of [`P52`].
const P23: f32 = 8388608.0;

/// Scalar linear interpolation into a [`LaneTable`] at the pre-scaled
/// lattice coordinate `t = d / step` — the reference expression the lane
/// kernels reproduce, and the lookup the adaptive grid uses for scattered
/// (non-row) evaluations. Clamping is an index `min`; the zero sentinel
/// delta makes clamped lookups return the final sample exactly.
#[inline]
pub fn lerp_table(table: &LaneTable, t: f64) -> f64 {
    let val = table.val();
    let del = table.del();
    let i = (t as usize).min(table.last_index());
    val[i] + del[i] * (t - i as f64)
}

/// One grid row of the radial update:
/// `out[i] = cells[i] · lerp(table, √(dx2[i] + dy2) · inv_step)`.
///
/// Fully auto-vectorized (packed sqrt, gathers, FMA) via the float-domain
/// clamp + magic-bias indexing described in the module docs, and
/// bit-identical to the scalar reference expression for finite
/// coordinates. Kept out-of-line so the surrounding caller can't break
/// the vectorizable codegen.
///
/// # Panics
///
/// Panics if `cells` or `dx2` are shorter than `out`.
#[inline(never)]
pub fn radial_product_row(
    out: &mut [f64],
    cells: &[f64],
    dx2: &[f64],
    dy2: f64,
    inv_step: f64,
    table: &LaneTable,
) {
    let n = out.len();
    let cells = &cells[..n];
    let dx2 = &dx2[..n];
    let val = table.val();
    let del = table.del();
    let lastf = table.lastf();
    assert!(val.len().is_power_of_two());
    assert_eq!(val.len(), del.len());
    let mask = val.len() - 1;
    for ((o, &c), &d) in out.iter_mut().zip(cells).zip(dx2) {
        let t = ((d + dy2).sqrt() * inv_step).min(lastf);
        let tf = t.trunc();
        let j = ((tf + P52).to_bits() as usize) & mask;
        *o = c * (val[j] + del[j] * (t - tf));
    }
}

/// One grid row of the radial update with f32 lane arithmetic (twice the
/// lanes of the f64 kernel): distances, scaling and interpolation run in
/// f32; only the final posterior multiply widens to f64.
///
/// # Panics
///
/// Panics if `cells` or `dx2` are shorter than `out`.
#[inline(never)]
pub fn radial_product_row_f32(
    out: &mut [f64],
    cells: &[f64],
    dx2: &[f32],
    dy2: f32,
    inv_step: f32,
    table: &LaneTable32,
) {
    let n = out.len();
    let cells = &cells[..n];
    let dx2 = &dx2[..n];
    let val = table.val();
    let del = table.del();
    let lastf = table.lastf();
    assert!(val.len().is_power_of_two());
    assert_eq!(val.len(), del.len());
    let mask = val.len() - 1;
    for ((o, &c), &d) in out.iter_mut().zip(cells).zip(dx2) {
        let t = ((d + dy2).sqrt() * inv_step).min(lastf);
        let tf = t.trunc();
        let j = ((tf + P23).to_bits() as usize) & mask;
        let w = val[j] + del[j] * (t - tf);
        *o = c * f64::from(w);
    }
}

/// One grid row of a *fused* radial update: multiplies one beacon's
/// constraint into an already-initialized scratch row
/// (`out[i] *= lerp(table, √(dx2[i] + dy2) · inv_step)`). The fused window
/// pass seeds scratch with the posterior once, then folds every beacon of
/// the window through this kernel row by row — the posterior itself is
/// loaded and stored once per window.
///
/// # Panics
///
/// Panics if `dx2` is shorter than `out`.
#[inline(never)]
pub fn radial_product_row_mul(
    out: &mut [f64],
    dx2: &[f64],
    dy2: f64,
    inv_step: f64,
    table: &LaneTable,
) {
    let n = out.len();
    let dx2 = &dx2[..n];
    let val = table.val();
    let del = table.del();
    let lastf = table.lastf();
    assert!(val.len().is_power_of_two());
    assert_eq!(val.len(), del.len());
    let mask = val.len() - 1;
    for (o, &d) in out.iter_mut().zip(dx2) {
        let t = ((d + dy2).sqrt() * inv_step).min(lastf);
        let tf = t.trunc();
        let j = ((tf + P52).to_bits() as usize) & mask;
        *o *= val[j] + del[j] * (t - tf);
    }
}

/// f32 fold step of the fused path: `out[i] *= widen(lerp32(...))`.
///
/// # Panics
///
/// Panics if `dx2` is shorter than `out`.
#[inline(never)]
pub fn radial_product_row_mul_f32(
    out: &mut [f64],
    dx2: &[f32],
    dy2: f32,
    inv_step: f32,
    table: &LaneTable32,
) {
    let n = out.len();
    let dx2 = &dx2[..n];
    let val = table.val();
    let del = table.del();
    let lastf = table.lastf();
    assert!(val.len().is_power_of_two());
    assert_eq!(val.len(), del.len());
    let mask = val.len() - 1;
    for (o, &d) in out.iter_mut().zip(dx2) {
        let t = ((d + dy2).sqrt() * inv_step).min(lastf);
        let tf = t.trunc();
        let j = ((tf + P23).to_bits() as usize) & mask;
        *o *= f64::from(val[j] + del[j] * (t - tf));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lerp_table_matches_inline_interpolation() {
        let values = [1.0, 0.5, 0.25, 0.125, 0.0625];
        let table = LaneTable::from_values(&values);
        for k in 0..200 {
            let t = k as f64 * 0.05;
            let i = t as usize;
            let expected = if i + 1 >= values.len() {
                values[values.len() - 1]
            } else {
                values[i] + (values[i + 1] - values[i]) * (t - i as f64)
            };
            let got = lerp_table(&table, t);
            assert_eq!(got.to_bits(), expected.to_bits(), "t = {t}");
        }
    }

    #[test]
    fn row_kernel_matches_scalar_expression_bitwise() {
        let values: Vec<f64> = (0..64).map(|k| (-(k as f64) * 0.11).exp() + 1e-6).collect();
        let table = LaneTable::from_values(&values);
        let inv_step = 1.0 / 0.35;
        let n = 13; // odd length: no lane-alignment assumption
        let cells: Vec<f64> = (0..n).map(|i| 1.0 / (i as f64 + 7.0)).collect();
        let dx2: Vec<f64> = (0..n).map(|i| (i as f64 * 1.7 - 9.0).powi(2)).collect();
        let dy2 = 12.25;
        let mut out = vec![0.0; n];
        radial_product_row(&mut out, &cells, &dx2, dy2, inv_step, &table);
        for i in 0..n {
            let t = (dx2[i] + dy2).sqrt() * inv_step;
            let expected = cells[i] * lerp_table(&table, t);
            assert_eq!(out[i].to_bits(), expected.to_bits(), "cell {i}");
        }
    }

    #[test]
    fn row_kernel_clamps_like_scalar_reference() {
        // Distances far past the lattice end: both the clamped lane lookup
        // and the index-min scalar reference must return the final sample.
        let values: Vec<f64> = (0..7).map(|k| 1.0 / (k as f64 + 1.0)).collect();
        let table = LaneTable::from_values(&values);
        let n = 9;
        let cells = vec![0.125; n];
        let dx2: Vec<f64> = (0..n).map(|i| (1e3 + i as f64).powi(2)).collect();
        let mut out = vec![0.0; n];
        radial_product_row(&mut out, &cells, &dx2, 0.0, 1.0, &table);
        for (i, &o) in out.iter().enumerate() {
            let expected = 0.125 * values[values.len() - 1];
            assert_eq!(o.to_bits(), expected.to_bits(), "cell {i}");
        }
    }

    #[test]
    fn mul_kernel_composes_like_two_products() {
        let values: Vec<f64> = (0..32).map(|k| 1.0 / (k as f64 + 1.0)).collect();
        let table = LaneTable::from_values(&values);
        let inv_step = 2.0;
        let n = 10;
        let cells = vec![0.01; n];
        let dx2: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut a = vec![0.0; n];
        radial_product_row(&mut a, &cells, &dx2, 1.0, inv_step, &table);
        radial_product_row_mul(&mut a, &dx2, 4.0, inv_step, &table);
        for i in 0..n {
            let w1 = a[i] / cells[i];
            let direct = lerp_table(&table, (dx2[i] + 1.0).sqrt() * inv_step)
                * lerp_table(&table, (dx2[i] + 4.0).sqrt() * inv_step);
            assert!((w1 - direct).abs() <= 1e-15 * direct.abs() + f64::MIN_POSITIVE);
        }
    }

    #[test]
    fn f32_kernel_tracks_f64_within_bound() {
        let values: Vec<f64> = (0..128)
            .map(|k| (-(k as f64) * 0.07).exp() + 1e-6)
            .collect();
        let table64 = LaneTable::from_values(&values);
        let table32 = LaneTable32::from_values(&values);
        let n = 23;
        let cells = vec![1.0 / n as f64; n];
        let dx2: Vec<f64> = (0..n).map(|i| (i as f64 * 2.3 - 20.0).powi(2)).collect();
        let dx2f: Vec<f32> = dx2.iter().map(|&v| v as f32).collect();
        let (dy2, step) = (30.0f64, 0.4f64);
        let mut a = vec![0.0; n];
        let mut b = vec![0.0; n];
        radial_product_row(&mut a, &cells, &dx2, dy2, 1.0 / step, &table64);
        radial_product_row_f32(
            &mut b,
            &cells,
            &dx2f,
            dy2 as f32,
            (1.0 / step) as f32,
            &table32,
        );
        let peak = values.iter().cloned().fold(0.0f64, f64::max) / n as f64;
        for i in 0..n {
            assert!(
                (a[i] - b[i]).abs() <= F32_KERNEL_REL_BOUND * peak,
                "cell {i}: f64 {} vs f32 {}",
                a[i],
                b[i]
            );
        }
    }

    #[test]
    fn pipeline_validation() {
        let ok = GridPipeline::default();
        assert!(ok.validate().is_ok());
        assert_eq!(ok.variant_name(), "simd");
        let mut bad = ok;
        bad.adaptive_coarse_factor = 0;
        assert!(bad.validate().is_err());
        let mut bad = ok;
        bad.adaptive_refine_factor = 1.0;
        assert!(bad.validate().is_err());
        let mut f32v = ok;
        f32v.precision = GridPrecision::F32;
        assert_eq!(f32v.variant_name(), "simd_f32");
        let mut ad = ok;
        ad.adaptive = true;
        assert_eq!(ad.variant_name(), "adaptive");
        assert_eq!(
            GridPipeline {
                kernel: GridKernel::Scalar,
                ..ok
            }
            .variant_name(),
            "scalar"
        );
        assert_eq!(
            format!("{} {}", GridKernel::Simd, GridPrecision::F32),
            "simd f32"
        );
    }
}
