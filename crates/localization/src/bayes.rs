//! The beacon-driven Bayesian localizer (paper Section 2.2).
//!
//! For every received beacon the robot looks the observed RSSI up in the
//! calibration PDF table, turns the resulting distance PDF into a
//! positional constraint (Eq. 1), multiplies it into its posterior and
//! renormalizes (Eq. 2). Once at least **three** beacons have been
//! incorporated, the posterior mean (Eq. 3) is reported as the position
//! estimate.

use serde::{Deserialize, Serialize};

use cocoa_net::calibration::{PdfTable, RadialConstraintTable};
use cocoa_net::geometry::Point;
use cocoa_net::rssi::{Dbm, RssiBin};

use crate::adaptive::{AdaptiveGrid, Tile};
use crate::grid::{ConstraintOutcome, GridConfig, PositionGrid};
use crate::kernel::{GridKernel, GridPipeline};

/// The paper requires at least this many beacons before estimating.
pub const MIN_BEACONS_FOR_ESTIMATE: u32 = 3;

/// Density floor mixed into every constraint so that a single outlier
/// beacon cannot annihilate the true position's cell. Expressed relative
/// to a uniform density over a 200 m scale: small enough to not blur fixes,
/// large enough to keep the posterior proper.
///
/// Public so that precomputed radial constraint tables
/// ([`RadialConstraintTable`]) can bake the same floor into their cached
/// profiles.
pub const CONSTRAINT_FLOOR: f64 = 1e-6;

/// Builds the per-experiment radial constraint cache for `table`, sized to
/// `grid`: one floored [`RadialProfile`](cocoa_net::calibration::RadialProfile)
/// per calibrated RSSI bin, sampled at sub-cell resolution out to the
/// area's diagonal. Build it once and share it by reference across every
/// robot and transmit round.
pub fn radial_constraints_for_grid(table: &PdfTable, grid: &GridConfig) -> RadialConstraintTable {
    // Sub-cell sampling: fine enough for the clamped minimum sigma of the
    // calibration fits (0.25 m) and always at least 4 samples per cell.
    let step = (grid.resolution_m * 0.25).min(0.05);
    let diag = (grid.area.width().powi(2) + grid.area.height().powi(2)).sqrt();
    RadialConstraintTable::new(table, step, diag, CONSTRAINT_FLOOR)
}

/// What happened to one beacon observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObservationResult {
    /// The constraint was multiplied into the posterior.
    Applied,
    /// The RSSI had no usable PDF-table bin (outside the calibrated range).
    NoPdf,
    /// The constraint was rejected as degenerate (kept old posterior).
    Rejected,
    /// The beacon failed the outlier gate: its claimed position is
    /// inconsistent with the RSSI-implied distance (a corrupted or lying
    /// beacon source) and was not applied.
    Outlier,
}

/// A Bayesian grid localizer fed by beacons.
///
/// # Examples
///
/// ```
/// use cocoa_localization::bayes::BayesianLocalizer;
/// use cocoa_localization::grid::GridConfig;
/// use cocoa_net::calibration::{calibrate, CalibrationConfig};
/// use cocoa_net::channel::RfChannel;
/// use cocoa_net::geometry::{Area, Point};
/// use cocoa_sim::rng::SeedSplitter;
///
/// let channel = RfChannel::default();
/// let mut rng = SeedSplitter::new(5).stream("cal", 0);
/// let table = calibrate(&channel, &CalibrationConfig::default(), &mut rng);
///
/// let mut loc = BayesianLocalizer::new(GridConfig::new(Area::square(200.0), 2.0));
/// let robot = Point::new(100.0, 100.0);
/// for beacon in [Point::new(90.0, 100.0), Point::new(110.0, 95.0), Point::new(100.0, 112.0)] {
///     let rssi = channel.sample_rssi(robot.distance_to(beacon), &mut rng);
///     loc.observe_beacon(&table, beacon, rssi);
/// }
/// let est = loc.estimate().expect("three beacons received");
/// assert!(est.distance_to(robot) < 15.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BayesianLocalizer {
    posterior: Posterior,
    pipeline: GridPipeline,
    beacons_applied: u32,
    beacons_seen: u32,
    /// Beacons resolved but not yet multiplied in (fused mode only): the
    /// claimed position and the already-resolved RSSI bin of each beacon of
    /// the current window, flushed in one grid pass by
    /// [`flush_pending`](Self::flush_pending).
    pending: Vec<(Point, RssiBin)>,
    stats: GridStats,
}

/// The posterior representation behind the localizer: the dense grid, or
/// the coarse-to-fine [`AdaptiveGrid`] when the pipeline's `adaptive` knob
/// is set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Posterior {
    /// Dense fine-lattice posterior.
    Dense(PositionGrid),
    /// Coarse-to-fine tiled posterior.
    Adaptive(AdaptiveGrid),
}

/// Cumulative grid-kernel cost accounting, surfaced as `grid.*` telemetry
/// counters. Counts are per constraint application (not per window) and
/// survive window resets — they describe work done, not posterior state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct GridStats {
    /// Radial constraints applied through the scalar reference kernel.
    pub kernel_scalar: u64,
    /// Radial constraints applied through the lane-packed f64 kernel.
    pub kernel_simd: u64,
    /// Radial constraints applied through the f32 lane kernel.
    pub kernel_simd_f32: u64,
    /// Radial constraints folded through fused window batches.
    pub kernel_fused: u64,
    /// Radial constraints applied on the adaptive grid.
    pub kernel_adaptive: u64,
    /// Windows whose beacons were committed as one fused grid pass.
    pub fused_windows: u64,
    /// Cells whose constraint weight was evaluated, across all kernels
    /// (the adaptive mode's headline saving).
    pub cells_touched: u64,
    /// Fine cells materialized by adaptive refinement.
    pub cells_refined: u64,
}

impl GridStats {
    /// Merges another accumulator into this one (used when aggregating
    /// per-robot stats into run-level counters).
    pub fn absorb(&mut self, other: &GridStats) {
        self.kernel_scalar += other.kernel_scalar;
        self.kernel_simd += other.kernel_simd;
        self.kernel_simd_f32 += other.kernel_simd_f32;
        self.kernel_fused += other.kernel_fused;
        self.kernel_adaptive += other.kernel_adaptive;
        self.fused_windows += other.fused_windows;
        self.cells_touched += other.cells_touched;
        self.cells_refined += other.cells_refined;
    }
}

impl BayesianLocalizer {
    /// Creates a localizer with a uniform prior over the area and the
    /// default grid pipeline (lane-packed f64 kernel — bit-identical to the
    /// scalar reference).
    pub fn new(config: GridConfig) -> Self {
        Self::with_pipeline(config, GridPipeline::default())
    }

    /// Creates a localizer with an explicit grid pipeline.
    pub fn with_pipeline(config: GridConfig, pipeline: GridPipeline) -> Self {
        let posterior = if pipeline.adaptive {
            Posterior::Adaptive(AdaptiveGrid::new(
                config,
                pipeline.adaptive_coarse_factor,
                pipeline.adaptive_refine_factor,
            ))
        } else {
            Posterior::Dense(PositionGrid::new(config))
        };
        BayesianLocalizer {
            posterior,
            pipeline,
            beacons_applied: 0,
            beacons_seen: 0,
            pending: Vec::new(),
            stats: GridStats::default(),
        }
    }

    /// The active grid pipeline.
    pub fn pipeline(&self) -> &GridPipeline {
        &self.pipeline
    }

    /// Cumulative kernel cost accounting.
    pub fn grid_stats(&self) -> &GridStats {
        &self.stats
    }

    /// The posterior representation.
    pub fn posterior(&self) -> &Posterior {
        &self.posterior
    }

    fn dense_mut(&mut self) -> &mut PositionGrid {
        match &mut self.posterior {
            Posterior::Dense(g) => g,
            Posterior::Adaptive(_) => {
                panic!("operation requires the dense grid (adaptive pipeline active)")
            }
        }
    }

    /// Incorporates one beacon: the sender claims to be at `beacon_pos` and
    /// was heard at `rssi`.
    ///
    /// This is the generic (closure) path and requires the dense grid;
    /// adaptive-pipeline localizers are only fed through
    /// [`observe_beacon_radial`](Self::observe_beacon_radial).
    ///
    /// # Panics
    ///
    /// Panics if the adaptive pipeline is active.
    pub fn observe_beacon(
        &mut self,
        table: &PdfTable,
        beacon_pos: Point,
        rssi: Dbm,
    ) -> ObservationResult {
        self.beacons_seen += 1;
        let Some(pdf) = table.lookup(rssi) else {
            return ObservationResult::NoPdf;
        };
        let outcome = self
            .dense_mut()
            .apply_constraint(|cell| pdf.density(cell.distance_to(beacon_pos)) + CONSTRAINT_FLOOR);
        self.record(outcome)
    }

    /// Incorporates one beacon through the radial fast path: the constraint
    /// comes from `radial`'s pre-sampled profile for the observed RSSI
    /// (same bin-fallback rule as [`PdfTable::lookup`]) and is applied
    /// through the pipeline-selected kernel — no per-cell `exp`, no
    /// allocation.
    ///
    /// In **fused** mode the observation is only *recorded* (position +
    /// resolved bin); the grid work happens in one batched pass at
    /// [`flush_pending`](Self::flush_pending). `Applied` is then reported
    /// optimistically — with the constraint floor baked into every profile
    /// a fused batch cannot reject in practice, and the beacon counters
    /// that gate [`estimate`](Self::estimate) are only advanced at flush.
    pub fn observe_beacon_radial(
        &mut self,
        radial: &RadialConstraintTable,
        beacon_pos: Point,
        rssi: Dbm,
    ) -> ObservationResult {
        self.beacons_seen += 1;
        if self.pipeline.fused && !self.pipeline.adaptive {
            let Some(bin) = radial.resolve(rssi) else {
                return ObservationResult::NoPdf;
            };
            self.pending.push((beacon_pos, bin));
            return ObservationResult::Applied;
        }
        let Some(profile) = radial.lookup(rssi) else {
            return ObservationResult::NoPdf;
        };
        let outcome = self.apply_radial(beacon_pos, profile);
        self.record(outcome)
    }

    /// Applies one radial constraint through the pipeline-selected kernel,
    /// updating the cost accounting.
    fn apply_radial(
        &mut self,
        beacon_pos: Point,
        profile: &cocoa_net::calibration::RadialProfile,
    ) -> ConstraintOutcome {
        match &mut self.posterior {
            Posterior::Dense(grid) => {
                self.stats.cells_touched += grid.num_cells() as u64;
                match (self.pipeline.kernel, self.pipeline.precision) {
                    (GridKernel::Scalar, _) => self.stats.kernel_scalar += 1,
                    (GridKernel::Simd, crate::kernel::GridPrecision::F64) => {
                        self.stats.kernel_simd += 1
                    }
                    (GridKernel::Simd, crate::kernel::GridPrecision::F32) => {
                        self.stats.kernel_simd_f32 += 1
                    }
                }
                grid.apply_radial_constraint_with(
                    beacon_pos,
                    profile,
                    self.pipeline.kernel,
                    self.pipeline.precision,
                )
            }
            Posterior::Adaptive(grid) => {
                let (outcome, op) = grid.apply_radial_constraint(beacon_pos, profile);
                self.stats.kernel_adaptive += 1;
                self.stats.cells_touched += op.cells_touched;
                self.stats.cells_refined += op.cells_refined;
                outcome
            }
        }
    }

    /// Commits all recorded-but-unapplied beacons of a fused window in one
    /// grid pass (one posterior load/store and one renormalize for the
    /// whole batch), advancing the beacon counters. Returns the number of
    /// beacons committed. A no-op outside fused mode or with nothing
    /// pending.
    ///
    /// If the *batch* product is degenerate (requires non-finite profile
    /// values — the floor rules out a zero total) the batch falls back to
    /// sequential application so a single poisoned beacon cannot veto its
    /// whole window.
    pub fn flush_pending(&mut self, radial: &RadialConstraintTable) -> u32 {
        if self.pending.is_empty() {
            return 0;
        }
        let pending = std::mem::take(&mut self.pending);
        let constraints: Vec<(Point, &cocoa_net::calibration::RadialProfile)> = pending
            .iter()
            .filter_map(|&(pos, bin)| radial.get(bin).map(|p| (pos, p)))
            .collect();
        let n = constraints.len() as u32;
        let precision = self.pipeline.precision;
        let outcome = self
            .dense_mut()
            .apply_fused_radial_constraints(&constraints, precision);
        match outcome {
            ConstraintOutcome::Applied => {
                self.stats.fused_windows += 1;
                self.stats.kernel_fused += u64::from(n);
                self.stats.cells_touched += u64::from(n) * self.num_posterior_cells() as u64;
                self.beacons_applied += n;
                n
            }
            ConstraintOutcome::Rejected => {
                let mut applied = 0;
                for (pos, profile) in constraints {
                    if self.apply_radial(pos, profile) == ConstraintOutcome::Applied {
                        self.beacons_applied += 1;
                        applied += 1;
                    }
                }
                applied
            }
        }
    }

    fn num_posterior_cells(&self) -> usize {
        match &self.posterior {
            Posterior::Dense(g) => g.num_cells(),
            Posterior::Adaptive(g) => g.num_cells(),
        }
    }

    fn record(&mut self, outcome: ConstraintOutcome) -> ObservationResult {
        match outcome {
            ConstraintOutcome::Applied => {
                self.beacons_applied += 1;
                ObservationResult::Applied
            }
            ConstraintOutcome::Rejected => ObservationResult::Rejected,
        }
    }

    /// The position estimate: the posterior mean, available once at least
    /// [`MIN_BEACONS_FOR_ESTIMATE`] beacons were applied (paper Section 2.2).
    ///
    /// In fused mode, call [`flush_pending`](Self::flush_pending) first —
    /// recorded-but-unflushed beacons do not count.
    pub fn estimate(&self) -> Option<Point> {
        if self.beacons_applied >= MIN_BEACONS_FOR_ESTIMATE {
            Some(match &self.posterior {
                Posterior::Dense(g) => g.mean(),
                Posterior::Adaptive(g) => g.mean(),
            })
        } else {
            None
        }
    }

    /// Beacons multiplied into the posterior since the last reset.
    pub fn beacons_applied(&self) -> u32 {
        self.beacons_applied
    }

    /// Beacons offered since the last reset (including unusable ones).
    pub fn beacons_seen(&self) -> u32 {
        self.beacons_seen
    }

    /// Posterior entropy, nats (confidence proxy; exposed for the relay-
    /// beaconing extension's goodness guard).
    pub fn entropy(&self) -> f64 {
        match &self.posterior {
            Posterior::Dense(g) => g.entropy(),
            Posterior::Adaptive(g) => g.entropy(),
        }
    }

    /// The entropy of the uniform prior over this grid, nats — the ceiling
    /// the entropy watchdog measures against.
    pub fn max_entropy(&self) -> f64 {
        match &self.posterior {
            Posterior::Dense(g) => g.max_entropy(),
            Posterior::Adaptive(g) => g.max_entropy(),
        }
    }

    /// Resets to the uniform prior — the paper's robots "throw away their
    /// currently estimated positions" at each transmit period. Also drops
    /// any unflushed fused beacons (their window is over).
    pub fn reset(&mut self) {
        match &mut self.posterior {
            Posterior::Dense(g) => g.reset_uniform(),
            Posterior::Adaptive(g) => g.reset_uniform(),
        }
        self.pending.clear();
        self.beacons_applied = 0;
        self.beacons_seen = 0;
    }

    /// Read-only access to the dense posterior grid.
    ///
    /// # Panics
    ///
    /// Panics if the adaptive pipeline is active — match on
    /// [`posterior`](Self::posterior) instead.
    pub fn grid(&self) -> &PositionGrid {
        match &self.posterior {
            Posterior::Dense(g) => g,
            Posterior::Adaptive(_) => {
                panic!("grid() requires the dense posterior (adaptive pipeline active)")
            }
        }
    }

    /// Rebuilds a localizer from checkpointed state: the posterior cells
    /// (see [`PositionGrid::cells`]) plus the beacon counters, under the
    /// default pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `cells` does not match the grid implied by `config`.
    pub fn from_checkpoint(
        config: GridConfig,
        cells: &[f64],
        beacons_applied: u32,
        beacons_seen: u32,
    ) -> Self {
        let mut loc = Self::with_pipeline(config, GridPipeline::default());
        loc.restore_posterior_cells(cells);
        loc.beacons_applied = beacons_applied;
        loc.beacons_seen = beacons_seen;
        loc
    }

    /// Restores checkpointed dense posterior cells (checkpoint plumbing).
    ///
    /// # Panics
    ///
    /// Panics if the adaptive pipeline is active or the cell count differs.
    pub fn restore_posterior_cells(&mut self, cells: &[f64]) {
        self.dense_mut().restore_cells(cells);
    }

    /// Restores checkpointed adaptive tile state (checkpoint plumbing).
    ///
    /// # Panics
    ///
    /// Panics if the adaptive pipeline is not active or the layout differs.
    pub fn restore_posterior_tiles(&mut self, tiles: Vec<Tile>) {
        match &mut self.posterior {
            Posterior::Adaptive(g) => g.restore_tiles(tiles),
            Posterior::Dense(_) => panic!("tile restore requires the adaptive posterior"),
        }
    }

    /// Restores checkpointed beacon counters, pending fused beacons and
    /// kernel accounting (checkpoint plumbing).
    pub fn restore_counters(
        &mut self,
        beacons_applied: u32,
        beacons_seen: u32,
        pending: Vec<(Point, RssiBin)>,
        stats: GridStats,
    ) {
        self.beacons_applied = beacons_applied;
        self.beacons_seen = beacons_seen;
        self.pending = pending;
        self.stats = stats;
    }

    /// The recorded-but-unflushed fused beacons (checkpoint plumbing).
    pub fn pending(&self) -> &[(Point, RssiBin)] {
        &self.pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cocoa_net::calibration::{calibrate, CalibrationConfig, DistancePdf, PdfTable};
    use cocoa_net::channel::RfChannel;
    use cocoa_net::geometry::Area;
    use cocoa_net::rssi::RssiBin;
    use cocoa_sim::rng::SeedSplitter;

    fn setup() -> (RfChannel, PdfTable) {
        let ch = RfChannel::default();
        let mut rng = SeedSplitter::new(77).stream("cal", 0);
        let table = calibrate(&ch, &CalibrationConfig::default(), &mut rng);
        (ch, table)
    }

    fn localizer() -> BayesianLocalizer {
        BayesianLocalizer::new(GridConfig::new(Area::square(200.0), 2.0))
    }

    #[test]
    fn no_estimate_before_three_beacons() {
        let (ch, table) = setup();
        let mut rng = SeedSplitter::new(78).stream("t", 0);
        let mut loc = localizer();
        let robot = Point::new(100.0, 100.0);
        for (i, beacon) in [Point::new(95.0, 100.0), Point::new(100.0, 106.0)]
            .into_iter()
            .enumerate()
        {
            assert!(loc.estimate().is_none(), "no estimate after {i} beacons");
            let rssi = ch.sample_rssi(robot.distance_to(beacon), &mut rng);
            loc.observe_beacon(&table, beacon, rssi);
        }
        assert!(loc.estimate().is_none());
        let third = Point::new(104.0, 96.0);
        let rssi = ch.sample_rssi(robot.distance_to(third), &mut rng);
        loc.observe_beacon(&table, third, rssi);
        assert!(loc.estimate().is_some());
    }

    #[test]
    fn close_beacons_localize_well() {
        let (ch, table) = setup();
        let robot = Point::new(120.0, 80.0);
        let beacons = [
            Point::new(110.0, 80.0),
            Point::new(126.0, 90.0),
            Point::new(120.0, 68.0),
            Point::new(132.0, 76.0),
        ];
        // Average accuracy across seeds to make the assertion robust.
        let mut errs = Vec::new();
        for seed in 0..10 {
            let mut rng = SeedSplitter::new(200 + seed).stream("t", 0);
            let mut loc = localizer();
            for b in beacons {
                let rssi = ch.sample_rssi(robot.distance_to(b), &mut rng);
                loc.observe_beacon(&table, b, rssi);
            }
            errs.push(loc.estimate().unwrap().distance_to(robot));
        }
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        assert!(mean < 8.0, "mean error {mean} m from nearby beacons");
    }

    #[test]
    fn far_beacons_localize_poorly() {
        let (ch, table) = setup();
        let robot = Point::new(100.0, 100.0);
        let near_err = {
            let mut rng = SeedSplitter::new(300).stream("t", 0);
            let mut loc = localizer();
            for b in [
                Point::new(92.0, 100.0),
                Point::new(108.0, 104.0),
                Point::new(100.0, 90.0),
            ] {
                let rssi = ch.sample_rssi(robot.distance_to(b), &mut rng);
                loc.observe_beacon(&table, b, rssi);
            }
            loc.estimate().unwrap().distance_to(robot)
        };
        let far_err = {
            let mut rng = SeedSplitter::new(300).stream("t", 1);
            let mut loc = localizer();
            // Beacons 90-120 m away: the "bad beacons" of Section 4.3.1.
            for b in [
                Point::new(10.0, 100.0),
                Point::new(195.0, 110.0),
                Point::new(100.0, 5.0),
            ] {
                let rssi = ch.sample_rssi(robot.distance_to(b), &mut rng);
                loc.observe_beacon(&table, b, rssi);
            }
            loc.estimate()
                .map_or(f64::INFINITY, |e| e.distance_to(robot))
        };
        assert!(
            near_err < far_err,
            "near {near_err} m should beat far {far_err} m"
        );
    }

    #[test]
    fn unusable_rssi_reports_no_pdf() {
        let (_, table) = setup();
        let mut loc = localizer();
        // Absurdly strong: no bin within fallback range.
        let r = loc.observe_beacon(&table, Point::new(1.0, 1.0), Dbm::new(20.0));
        assert_eq!(r, ObservationResult::NoPdf);
        assert_eq!(loc.beacons_applied(), 0);
        assert_eq!(loc.beacons_seen(), 1);
    }

    #[test]
    fn reset_requires_three_fresh_beacons() {
        let (ch, table) = setup();
        let mut rng = SeedSplitter::new(400).stream("t", 0);
        let mut loc = localizer();
        let robot = Point::new(100.0, 100.0);
        let beacons = [
            Point::new(92.0, 100.0),
            Point::new(108.0, 104.0),
            Point::new(100.0, 90.0),
        ];
        for b in beacons {
            let rssi = ch.sample_rssi(robot.distance_to(b), &mut rng);
            loc.observe_beacon(&table, b, rssi);
        }
        assert!(loc.estimate().is_some());
        loc.reset();
        assert!(loc.estimate().is_none());
        assert_eq!(loc.beacons_applied(), 0);
    }

    #[test]
    fn entropy_falls_with_information() {
        let (ch, table) = setup();
        let mut rng = SeedSplitter::new(500).stream("t", 0);
        let mut loc = localizer();
        let initial = loc.entropy();
        let robot = Point::new(100.0, 100.0);
        let b = Point::new(95.0, 100.0);
        let rssi = ch.sample_rssi(robot.distance_to(b), &mut rng);
        loc.observe_beacon(&table, b, rssi);
        assert!(loc.entropy() < initial);
    }

    #[test]
    fn radial_path_tracks_generic_path() {
        let (ch, table) = setup();
        let grid_cfg = GridConfig::new(Area::square(200.0), 2.0);
        let radial = radial_constraints_for_grid(&table, &grid_cfg);
        let mut rng = SeedSplitter::new(900).stream("t", 0);
        let robot = Point::new(120.0, 80.0);
        let mut generic = BayesianLocalizer::new(grid_cfg);
        let mut fast = BayesianLocalizer::new(grid_cfg);
        for b in [
            Point::new(110.0, 80.0),
            Point::new(126.0, 90.0),
            Point::new(120.0, 68.0),
            Point::new(40.0, 170.0),
        ] {
            let rssi = ch.sample_rssi(robot.distance_to(b), &mut rng);
            let a = generic.observe_beacon(&table, b, rssi);
            let r = fast.observe_beacon_radial(&radial, b, rssi);
            assert_eq!(a, r, "paths disagree on outcome for beacon {b}");
        }
        let (ea, er) = (generic.estimate().unwrap(), fast.estimate().unwrap());
        assert!(
            ea.distance_to(er) < 0.25,
            "estimates diverged: generic {ea} vs radial {er}"
        );
    }

    #[test]
    fn outlier_beacon_does_not_annihilate_posterior() {
        // A synthetic table whose PDF puts essentially all mass at 5 m.
        let table = PdfTable::from_entries(
            [(
                RssiBin(-50),
                DistancePdf::Gaussian {
                    mean: 5.0,
                    sigma: 0.5,
                },
            )],
            -80.0,
        );
        let mut loc = localizer();
        // Two contradictory beacons claiming 5 m from opposite corners.
        let a = loc.observe_beacon(&table, Point::new(0.0, 0.0), Dbm::new(-50.0));
        let b = loc.observe_beacon(&table, Point::new(200.0, 200.0), Dbm::new(-50.0));
        assert_eq!(a, ObservationResult::Applied);
        // Thanks to the density floor the second is still applicable.
        assert_eq!(b, ObservationResult::Applied);
        assert!((loc.grid().total_mass() - 1.0).abs() < 1e-6);
    }
}
