//! Property-based tests for the Bayesian localization invariants, the EKF
//! backend's covariance health, and backend checkpoint round-trips.

use cocoa_localization::adaptive::AdaptiveGrid;
use cocoa_localization::bayes::{radial_constraints_for_grid, CONSTRAINT_FLOOR};
use cocoa_localization::grid::ConstraintOutcome;
use cocoa_localization::kernel::{GridKernel, GridPipeline, GridPrecision, F32_KERNEL_REL_BOUND};
use cocoa_localization::prelude::*;
use cocoa_net::calibration::{calibrate, CalibrationConfig, DistancePdf, PdfTable, RadialProfile};
use cocoa_net::channel::RfChannel;
use cocoa_net::geometry::{Area, Point, Vec2};
use cocoa_net::rssi::{Dbm, RssiBin};
use cocoa_sim::rng::SeedSplitter;
use proptest::prelude::*;

fn arb_in_area() -> impl Strategy<Value = Point> {
    (0.0..200.0f64, 0.0..200.0f64).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    /// The posterior always stays a probability distribution (mass 1,
    /// non-negative) under arbitrary constraint sequences.
    #[test]
    fn posterior_stays_normalized(
        centers in proptest::collection::vec(arb_in_area(), 1..8),
        widths in proptest::collection::vec(1.0..60.0f64, 1..8),
    ) {
        let mut grid = PositionGrid::new(GridConfig::new(Area::square(200.0), 4.0));
        for (c, w) in centers.iter().zip(widths.iter().cycle()) {
            let c = *c;
            let w = *w;
            grid.apply_constraint(|p| (-(p.distance_to(c) / w).powi(2)).exp() + 1e-9);
            prop_assert!((grid.total_mass() - 1.0).abs() < 1e-6);
        }
    }

    /// The posterior mean always lies inside the deployment area.
    #[test]
    fn mean_inside_area(
        centers in proptest::collection::vec(arb_in_area(), 0..6),
    ) {
        let area = Area::square(200.0);
        let mut grid = PositionGrid::new(GridConfig::new(area, 4.0));
        for c in &centers {
            let c = *c;
            grid.apply_constraint(|p| (-(p.distance_to(c) / 15.0).powi(2)).exp() + 1e-9);
        }
        prop_assert!(area.contains(grid.mean()));
        prop_assert!(area.contains(grid.map_estimate()));
    }

    /// An informative constraint never increases entropy; reset restores
    /// the maximum.
    #[test]
    fn entropy_monotone_under_information(c in arb_in_area(), w in 2.0..40.0f64) {
        let mut grid = PositionGrid::new(GridConfig::new(Area::square(200.0), 4.0));
        let max_entropy = grid.entropy();
        grid.apply_constraint(|p| (-(p.distance_to(c) / w).powi(2)).exp() + 1e-12);
        prop_assert!(grid.entropy() <= max_entropy + 1e-9);
        grid.reset_uniform();
        prop_assert!((grid.entropy() - max_entropy).abs() < 1e-9);
    }

    /// The localizer never produces an estimate from fewer than three
    /// applied beacons, whatever the inputs.
    #[test]
    fn three_beacon_rule(beacons in proptest::collection::vec((arb_in_area(), -95.0..-35.0f64), 0..3)) {
        let ch = RfChannel::default();
        let table = calibrate(
            &ch,
            &CalibrationConfig { samples_per_distance: 30, ..Default::default() },
            &mut SeedSplitter::new(5).stream("cal", 0),
        );
        let mut loc = BayesianLocalizer::new(GridConfig::new(Area::square(200.0), 4.0));
        for (pos, rssi) in &beacons {
            loc.observe_beacon(&table, *pos, cocoa_net::rssi::Dbm::new(*rssi));
        }
        prop_assert!(loc.beacons_applied() <= beacons.len() as u32);
        if loc.beacons_applied() < 3 {
            prop_assert!(loc.estimate().is_none());
        }
    }

    /// Tighter PDFs localize at least roughly as well as looser ones for
    /// the same beacon geometry (statistical, averaged over seeds).
    #[test]
    fn sharper_pdfs_do_not_hurt(seed in 0u64..30) {
        let area = Area::square(200.0);
        let robot = Point::new(100.0, 100.0);
        let beacons = [
            Point::new(85.0, 100.0),
            Point::new(112.0, 108.0),
            Point::new(100.0, 86.0),
            Point::new(90.0, 112.0),
        ];
        let run = |sigma: f64| {
            let table = PdfTable::from_entries(
                (-100..-30).map(|b| {
                    let ch = RfChannel::default();
                    let mean = ch.distance_for_mean_rssi(RssiBin(b).center());
                    (RssiBin(b), DistancePdf::Gaussian { mean, sigma })
                }),
                -80.0,
            );
            let ch = RfChannel::default();
            let mut rng = SeedSplitter::new(seed).stream("probe", 0);
            let mut loc = BayesianLocalizer::new(GridConfig::new(area, 2.0));
            for b in beacons {
                let rssi = ch.sample_rssi(robot.distance_to(b), &mut rng);
                loc.observe_beacon(&table, b, rssi);
            }
            loc.estimate().map(|e| e.distance_to(robot))
        };
        if let (Some(sharp), Some(loose)) = (run(2.0), run(30.0)) {
            // Allow statistical slack; the loose table must not be
            // dramatically better.
            prop_assert!(sharp <= loose + 6.0, "sharp {sharp} vs loose {loose}");
        }
    }

    /// The radial fast path computes exactly the posterior the generic
    /// closure path computes, cell for cell, for arbitrary beacon
    /// positions (including outside the area), profile shapes and grid
    /// resolutions.
    #[test]
    fn radial_constraint_equals_generic_per_cell(
        cx in -20.0..220.0f64,
        cy in -20.0..220.0f64,
        res in 1.0..8.0f64,
        mean in 2.0..90.0f64,
        sigma in 0.25..25.0f64,
        step in 0.02..0.5f64,
    ) {
        let pdf = DistancePdf::Gaussian { mean, sigma };
        let profile = pdf.radial_profile(step, 340.0).offset(CONSTRAINT_FLOOR);
        let center = Point::new(cx, cy);
        let mut generic = PositionGrid::new(GridConfig::new(Area::square(200.0), res));
        let mut radial = generic.clone();
        // Two applications so scratch-buffer reuse is in play.
        for _ in 0..2 {
            let oa = generic.apply_constraint(|p| profile.density(p.distance_to(center)));
            let ob = radial.apply_radial_constraint(center, &profile);
            prop_assert_eq!(oa, ob);
            for iy in 0..generic.ny() {
                for ix in 0..generic.nx() {
                    let pa = generic.density_at(generic.cell_center(ix, iy));
                    let pb = radial.density_at(radial.cell_center(ix, iy));
                    prop_assert!(
                        (pa - pb).abs() < 1e-9,
                        "cell ({},{}): generic {} vs radial {}", ix, iy, pa, pb
                    );
                }
            }
        }
    }

    /// Same equivalence through a *calibrated* PDF table: whatever bin an
    /// observed RSSI resolves to, its sampled profile drives the radial
    /// path to the generic path's posterior.
    #[test]
    fn radial_matches_generic_for_calibrated_bins(
        rssi in -95.0..-40.0f64,
        cx in 0.0..200.0f64,
        cy in 0.0..200.0f64,
        res in 2.0..6.0f64,
    ) {
        let ch = RfChannel::default();
        let table = calibrate(
            &ch,
            &CalibrationConfig { samples_per_distance: 30, ..Default::default() },
            &mut SeedSplitter::new(11).stream("cal", 0),
        );
        prop_assume!(table.lookup(Dbm::new(rssi)).is_some());
        let pdf = table.lookup(Dbm::new(rssi)).unwrap();
        let profile = pdf.radial_profile(0.05, 340.0).offset(CONSTRAINT_FLOOR);
        let center = Point::new(cx, cy);
        let mut generic = PositionGrid::new(GridConfig::new(Area::square(200.0), res));
        let mut radial = generic.clone();
        let oa = generic.apply_constraint(|p| profile.density(p.distance_to(center)));
        let ob = radial.apply_radial_constraint(center, &profile);
        prop_assert_eq!(oa, ob);
        for iy in 0..generic.ny() {
            for ix in 0..generic.nx() {
                let pa = generic.density_at(generic.cell_center(ix, iy));
                let pb = radial.density_at(radial.cell_center(ix, iy));
                prop_assert!((pa - pb).abs() < 1e-9);
            }
        }
    }

    /// Degenerate constraints are rejected identically by both paths and
    /// leave the posterior bit-for-bit untouched.
    #[test]
    fn radial_rejection_behaviour_identical(
        cx in 0.0..200.0f64,
        cy in 0.0..200.0f64,
        res in 1.0..8.0f64,
        informative in any::<bool>(),
    ) {
        let center = Point::new(cx, cy);
        let mut generic = PositionGrid::new(GridConfig::new(Area::square(200.0), res));
        if informative {
            generic.apply_constraint(|p| (-(p.distance_to(center) / 20.0).powi(2)).exp() + 1e-9);
        }
        let mut radial = generic.clone();
        let before = generic.clone();
        let zero = RadialProfile::from_fn(0.5, 340.0, |_| 0.0);
        let oa = generic.apply_constraint(|p| zero.density(p.distance_to(center)));
        let ob = radial.apply_radial_constraint(center, &zero);
        prop_assert_eq!(oa, ConstraintOutcome::Rejected);
        prop_assert_eq!(ob, ConstraintOutcome::Rejected);
        prop_assert_eq!(&generic, &before);
        prop_assert_eq!(&radial, &before);
    }

    /// The windowed estimator's stats are internally consistent.
    #[test]
    fn window_stats_consistent(windows in 1u32..6, beacons_per in 0usize..6) {
        let ch = RfChannel::default();
        let table = calibrate(
            &ch,
            &CalibrationConfig { samples_per_distance: 30, ..Default::default() },
            &mut SeedSplitter::new(9).stream("cal", 0),
        );
        let mut est = WindowedRfEstimator::new(GridConfig::new(Area::square(200.0), 4.0));
        let mut rng = SeedSplitter::new(10).stream("b", 0);
        use rand::Rng;
        for _ in 0..windows {
            est.begin_window();
            for _ in 0..beacons_per {
                let b = Point::new(rng.gen::<f64>() * 200.0, rng.gen::<f64>() * 200.0);
                let rssi = ch.sample_rssi(b.distance_to(Point::new(100.0, 100.0)).max(0.5), &mut rng);
                est.observe_beacon(&table, b, rssi);
            }
            est.end_window();
        }
        let stats = est.stats();
        prop_assert_eq!(stats.windows, windows);
        prop_assert!(stats.fixes <= u64::from(stats.windows) as u32);
        prop_assert!(stats.beacons_applied <= stats.beacons_seen);
        prop_assert_eq!(stats.beacons_seen, u64::from(windows) * beacons_per as u64);
    }
}

/// One step of an arbitrary EKF schedule: a dead-reckoned displacement or
/// a (possibly wildly inconsistent) range update.
#[derive(Debug, Clone, Copy)]
enum EkfOp {
    Predict(f64, f64),
    Update(f64, f64, f64, f64),
}

fn arb_ekf_op() -> impl Strategy<Value = EkfOp> {
    prop_oneof![
        ((-20.0..20.0f64), (-20.0..20.0f64)).prop_map(|(x, y)| EkfOp::Predict(x, y)),
        (
            (0.0..200.0f64),
            (0.0..200.0f64),
            (0.5..250.0f64),
            (0.25..12.0f64),
        )
            .prop_map(|(x, y, r, s)| EkfOp::Update(x, y, r, s)),
    ]
}

proptest! {
    /// The EKF covariance stays a symmetric positive-definite matrix under
    /// arbitrary interleavings of prediction steps and (gated, applied or
    /// inflating) range updates — the filter never talks itself into an
    /// impossible uncertainty, whatever the measurement stream does.
    #[test]
    fn ekf_covariance_stays_symmetric_positive_definite(
        ops in proptest::collection::vec(arb_ekf_op(), 1..60),
        initial_sigma in 1.0..150.0f64,
    ) {
        let mut f = EkfLocalizer::new(
            EkfConfig { initial_sigma_m: initial_sigma, ..EkfConfig::default() },
            Area::square(200.0),
            None,
        );
        for op in &ops {
            match *op {
                EkfOp::Predict(x, y) => f.predict(Vec2::new(x, y)),
                EkfOp::Update(x, y, r, s) => {
                    f.update_range(Point::new(x, y), r, s);
                }
            }
            // Symmetry is structural (P₁₂ is stored once); health means the
            // matrix it denotes is positive-definite and finite.
            let s = f.snapshot();
            prop_assert!(
                s.p11.is_finite() && s.p22.is_finite() && s.p12.is_finite(),
                "covariance went non-finite: {s:?}"
            );
            prop_assert!(s.p11 > 0.0 && s.p22 > 0.0, "diagonal must stay positive: {s:?}");
            prop_assert!(
                s.p12 * s.p12 <= s.p11 * s.p22 * (1.0 + 1e-9) + 1e-12,
                "P must stay positive-definite: {s:?}"
            );
            prop_assert!(f.uncertainty().is_finite());
            prop_assert!(Area::square(200.0).contains(f.estimate()));
        }
    }

    /// Every backend's checkpoint restores to an estimator that equals the
    /// original field for field — including mid-window, with a window open
    /// and beacons partially accumulated.
    #[test]
    fn backend_checkpoints_round_trip_for_every_algorithm(
        seed in 0u64..200,
        beacons_per in 0usize..6,
        windows in 1u32..4,
        open in any::<bool>(),
    ) {
        let ch = RfChannel::default();
        let table = calibrate(
            &ch,
            &CalibrationConfig { samples_per_distance: 30, ..Default::default() },
            &mut SeedSplitter::new(seed).stream("cal", 0),
        );
        let grid = GridConfig::new(Area::square(200.0), 4.0);
        let robot = Point::new(100.0, 100.0);
        for algorithm in RfAlgorithm::ALL {
            let mut est = WindowedRfEstimator::with_algorithm(grid, algorithm);
            let mut rng = SeedSplitter::new(seed).stream("b", 0);
            use rand::Rng;
            for w in 0..windows {
                est.note_odometry(Point::new(100.0 + f64::from(w), 100.0));
                est.begin_window();
                for _ in 0..beacons_per {
                    let b = Point::new(rng.gen::<f64>() * 200.0, rng.gen::<f64>() * 200.0);
                    let rssi = ch.sample_rssi(b.distance_to(robot).max(0.5), &mut rng);
                    est.observe_beacon(&table, b, rssi);
                }
                if w + 1 < windows || !open {
                    est.end_window();
                }
            }
            let c = est.checkpoint();
            prop_assert_eq!(c.algorithm(), algorithm);
            let restored = WindowedRfEstimator::from_checkpoint(grid, c.clone());
            prop_assert_eq!(&restored, &est, "{} restore must be exact", algorithm);
            prop_assert_eq!(restored.checkpoint(), c, "{} re-checkpoint must be exact", algorithm);
        }
    }
}

proptest! {
    /// The lane-packed f64 kernel is bit-identical to the scalar
    /// reference: same posterior bytes for arbitrary beacon geometry,
    /// profile shape and grid resolution. This is the contract that lets
    /// the Simd kernel be the default without perturbing goldens.
    #[test]
    fn simd_f64_kernel_is_bit_identical_to_scalar(
        cx in -20.0..220.0f64,
        cy in -20.0..220.0f64,
        res in 1.0..8.0f64,
        mean in 2.0..90.0f64,
        sigma in 0.25..25.0f64,
        step in 0.02..0.5f64,
    ) {
        let pdf = DistancePdf::Gaussian { mean, sigma };
        let profile = pdf.radial_profile(step, 340.0).offset(CONSTRAINT_FLOOR);
        let center = Point::new(cx, cy);
        let mut scalar = PositionGrid::new(GridConfig::new(Area::square(200.0), res));
        let mut simd = scalar.clone();
        for _ in 0..2 {
            let oa = scalar.apply_radial_constraint_with(
                center, &profile, GridKernel::Scalar, GridPrecision::F64,
            );
            let ob = simd.apply_radial_constraint_with(
                center, &profile, GridKernel::Simd, GridPrecision::F64,
            );
            prop_assert_eq!(oa, ob);
            for (ix, (a, b)) in scalar.cells().iter().zip(simd.cells()).enumerate() {
                prop_assert!(
                    a.to_bits() == b.to_bits(),
                    "cell {}: scalar {:e} vs simd {:e}", ix, a, b
                );
            }
        }
    }

    /// The f32 lane kernel tracks the f64 posterior within the pinned
    /// per-cell bound (scaled by the peak density — the constraint weight
    /// error is relative to the profile's dynamic range).
    #[test]
    fn f32_kernel_tracks_f64_within_pinned_bound(
        cx in 0.0..200.0f64,
        cy in 0.0..200.0f64,
        res in 1.0..8.0f64,
        mean in 2.0..90.0f64,
        sigma in 0.25..25.0f64,
    ) {
        let pdf = DistancePdf::Gaussian { mean, sigma };
        let profile = pdf.radial_profile(0.05, 340.0).offset(CONSTRAINT_FLOOR);
        let center = Point::new(cx, cy);
        let mut wide = PositionGrid::new(GridConfig::new(Area::square(200.0), res));
        let mut narrow = wide.clone();
        let oa = wide.apply_radial_constraint_with(
            center, &profile, GridKernel::Simd, GridPrecision::F64,
        );
        let ob = narrow.apply_radial_constraint_with(
            center, &profile, GridKernel::Simd, GridPrecision::F32,
        );
        prop_assert_eq!(oa, ob);
        let peak = wide.cells().iter().cloned().fold(0.0f64, f64::max);
        let bound = 4.0 * F32_KERNEL_REL_BOUND * peak;
        for (ix, (a, b)) in wide.cells().iter().zip(narrow.cells()).enumerate() {
            prop_assert!(
                (a - b).abs() <= bound,
                "cell {}: f64 {:e} vs f32 {:e} (bound {:e})", ix, a, b, bound
            );
        }
    }

    /// End-to-end: an f32-lane localizer's estimate lands within a pinned
    /// distance of the f64 localizer's for the same beacon stream.
    #[test]
    fn f32_pipeline_estimate_delta_is_pinned(seed in 0u64..40) {
        let ch = RfChannel::default();
        let table = calibrate(
            &ch,
            &CalibrationConfig { samples_per_distance: 30, ..Default::default() },
            &mut SeedSplitter::new(seed).stream("cal", 0),
        );
        let grid = GridConfig::new(Area::square(200.0), 2.0);
        let f32_pipeline = GridPipeline {
            precision: GridPrecision::F32,
            ..GridPipeline::default()
        };
        let mut wide = BayesianLocalizer::with_pipeline(grid, GridPipeline::default());
        let mut narrow = BayesianLocalizer::with_pipeline(grid, f32_pipeline);
        let robot = Point::new(100.0, 100.0);
        let beacons = [
            Point::new(85.0, 100.0),
            Point::new(112.0, 108.0),
            Point::new(100.0, 86.0),
            Point::new(90.0, 112.0),
        ];
        let mut rng = SeedSplitter::new(seed).stream("probe", 0);
        for b in beacons {
            let rssi = ch.sample_rssi(robot.distance_to(b), &mut rng);
            wide.observe_beacon(&table, b, rssi);
            narrow.observe_beacon(&table, b, rssi);
        }
        match (wide.estimate(), narrow.estimate()) {
            (Some(a), Some(b)) => prop_assert!(
                a.distance_to(b) < 0.05,
                "f64 {:?} vs f32 {:?}", a, b
            ),
            (a, b) => prop_assert_eq!(a.is_some(), b.is_some()),
        }
    }

    /// The adaptive posterior conserves probability mass to 1e-9 under
    /// arbitrary accepted constraint sequences, through refinement and
    /// coarsening alike.
    #[test]
    fn adaptive_posterior_conserves_mass(
        centers in proptest::collection::vec(arb_in_area(), 1..8),
        means in proptest::collection::vec(5.0..80.0f64, 1..8),
        factor in 2u32..6,
    ) {
        let mut grid = AdaptiveGrid::new(GridConfig::new(Area::square(200.0), 2.0), factor, 2.0);
        for (c, m) in centers.iter().zip(means.iter().cycle()) {
            let pdf = DistancePdf::Gaussian { mean: *m, sigma: 6.0 };
            let profile = pdf.radial_profile(0.1, 340.0).offset(CONSTRAINT_FLOOR);
            grid.apply_radial_constraint(*c, &profile);
            prop_assert!(
                (grid.total_mass() - 1.0).abs() < 1e-9,
                "mass {} after constraint", grid.total_mass()
            );
        }
    }

    /// Refinement correctness: where the posterior concentrates, the
    /// adaptive grid's mean tracks the dense grid's mean to within one
    /// fine cell, despite touching a fraction of the cells.
    #[test]
    fn adaptive_mean_tracks_dense_grid(seed in 0u64..40) {
        let area = Area::square(200.0);
        let robot = Point::new(100.0, 100.0);
        let beacons = [
            Point::new(85.0, 100.0),
            Point::new(112.0, 108.0),
            Point::new(100.0, 86.0),
            Point::new(90.0, 112.0),
        ];
        let ch = RfChannel::default();
        let table = calibrate(
            &ch,
            &CalibrationConfig { samples_per_distance: 30, ..Default::default() },
            &mut SeedSplitter::new(seed).stream("cal", 0),
        );
        let cfg = GridConfig::new(area, 2.0);
        let radial = radial_constraints_for_grid(&table, &cfg);
        let mut dense = PositionGrid::new(cfg);
        let mut adaptive = AdaptiveGrid::new(cfg, 4, 2.0);
        let mut rng = SeedSplitter::new(seed).stream("probe", 0);
        let mut applied = 0u32;
        for b in beacons {
            let rssi = ch.sample_rssi(robot.distance_to(b), &mut rng);
            if let Some(profile) = radial.lookup(rssi) {
                let oa = dense.apply_radial_constraint(b, profile);
                let (ob, _) = adaptive.apply_radial_constraint(b, profile);
                prop_assert_eq!(oa, ob);
                if oa == ConstraintOutcome::Applied {
                    applied += 1;
                }
            }
        }
        if applied >= 3 {
            prop_assert!(
                dense.mean().distance_to(adaptive.mean()) <= cfg.resolution_m,
                "dense {:?} vs adaptive {:?}", dense.mean(), adaptive.mean()
            );
        }
    }
}
