//! GFG/GPSR-style geographic routing: greedy forwarding with face-routing
//! recovery (Bose, Morin, Stojmenović & Urrutia's "Routing with guaranteed
//! delivery in ad hoc wireless networks" — the paper’s reference \[23\]).
//!
//! All forwarding decisions use the nodes' **believed** positions; packets
//! physically travel over true-position links. With exact coordinates on a
//! connected unit-disk graph, greedy + face recovery delivers; with CoCoA's
//! estimated coordinates, delivery degrades gracefully with the
//! localization error — that degradation is the experiment.

use serde::{Deserialize, Serialize};

use crate::graph::UnitDiskGraph;

/// Why a routing attempt ended.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouteStatus {
    /// The packet reached the destination node.
    Delivered,
    /// Hop budget exhausted (routing loop or dead end).
    HopLimit,
    /// A node had no neighbours at all.
    Isolated,
}

/// The result of routing one packet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouteOutcome {
    /// Terminal status.
    pub status: RouteStatus,
    /// The node sequence the packet traversed (starts at the source).
    pub path: Vec<usize>,
    /// Hops spent in greedy mode.
    pub greedy_hops: usize,
    /// Hops spent in face-recovery mode.
    pub face_hops: usize,
}

impl RouteOutcome {
    /// Whether the packet arrived.
    pub fn delivered(&self) -> bool {
        self.status == RouteStatus::Delivered
    }

    /// Total hops taken.
    pub fn hops(&self) -> usize {
        self.path.len().saturating_sub(1)
    }
}

/// Geographic router state over a graph snapshot.
#[derive(Debug)]
pub struct GeoRouter<'a> {
    graph: &'a UnitDiskGraph,
    gabriel: Vec<Vec<usize>>,
    hop_limit: usize,
    face_recovery: bool,
}

impl<'a> GeoRouter<'a> {
    /// Prepares a router (computes the Gabriel planarization once).
    pub fn new(graph: &'a UnitDiskGraph) -> Self {
        let hop_limit = 4 * graph.len().max(8);
        GeoRouter {
            gabriel: graph.gabriel_adjacency(),
            graph,
            hop_limit,
            face_recovery: true,
        }
    }

    /// A router without face recovery: pure greedy forwarding, which
    /// drops packets at local minima. The ablation baseline that
    /// quantifies what face routing buys.
    pub fn greedy_only(graph: &'a UnitDiskGraph) -> Self {
        GeoRouter {
            face_recovery: false,
            ..GeoRouter::new(graph)
        }
    }

    fn believed(&self, i: usize) -> cocoa_net::geometry::Point {
        self.graph.node(i).believed_position
    }

    /// Greedy step: the neighbour strictly closest (believed) to the
    /// destination's believed position, if any is closer than `from`.
    fn greedy_next(&self, from: usize, dest: usize) -> Option<usize> {
        let target = self.believed(dest);
        let here = self.believed(from).distance_to(target);
        self.graph
            .neighbors(from)
            .iter()
            .copied()
            .map(|n| (n, self.believed(n).distance_to(target)))
            .filter(|&(_, d)| d < here - 1e-12)
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("distances are finite"))
            .map(|(n, _)| n)
    }

    /// The next edge counter-clockwise from the reference direction
    /// `angle_in` around `at`, over the planarized adjacency (right-hand
    /// rule traversal).
    fn face_next(&self, at: usize, angle_in: f64) -> Option<usize> {
        let here = self.believed(at);
        self.gabriel[at]
            .iter()
            .copied()
            .map(|n| {
                let angle = here.bearing_to(self.believed(n));
                // Positive CCW offset from the incoming direction, in (0, 2π].
                let mut delta = angle - angle_in;
                while delta <= 1e-12 {
                    delta += std::f64::consts::TAU;
                }
                (n, delta)
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("angles are finite"))
            .map(|(n, _)| n)
    }

    /// Routes a packet from `src` to `dest` with greedy forwarding and
    /// face recovery.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dest` are out of bounds.
    pub fn route(&self, src: usize, dest: usize) -> RouteOutcome {
        assert!(
            src < self.graph.len() && dest < self.graph.len(),
            "node out of bounds"
        );
        let mut path = vec![src];
        let mut greedy_hops = 0;
        let mut face_hops = 0;
        let mut current = src;
        // Face-mode state: the distance at which greedy failed, and the
        // direction we arrived from.
        let mut face_anchor: Option<f64> = None;
        let mut came_from: Option<usize> = None;

        while path.len() <= self.hop_limit {
            if current == dest {
                return RouteOutcome {
                    status: RouteStatus::Delivered,
                    path,
                    greedy_hops,
                    face_hops,
                };
            }
            if self.graph.neighbors(current).is_empty() {
                return RouteOutcome {
                    status: RouteStatus::Isolated,
                    path,
                    greedy_hops,
                    face_hops,
                };
            }
            // Leave face mode as soon as we are closer than the anchor.
            if let Some(anchor) = face_anchor {
                let d = self.believed(current).distance_to(self.believed(dest));
                if d < anchor - 1e-12 {
                    face_anchor = None;
                }
            }
            let next = if face_anchor.is_none() {
                match self.greedy_next(current, dest) {
                    Some(n) => {
                        greedy_hops += 1;
                        came_from = Some(current);
                        n
                    }
                    None if !self.face_recovery => {
                        // Pure greedy: a local minimum is a drop.
                        return RouteOutcome {
                            status: RouteStatus::HopLimit,
                            path,
                            greedy_hops,
                            face_hops,
                        };
                    }
                    None => {
                        // Local minimum: enter face mode.
                        face_anchor = Some(self.believed(current).distance_to(self.believed(dest)));
                        let angle_in = self.believed(current).bearing_to(self.believed(dest));
                        match self.face_next(current, angle_in) {
                            Some(n) => {
                                face_hops += 1;
                                came_from = Some(current);
                                n
                            }
                            None => {
                                return RouteOutcome {
                                    status: RouteStatus::Isolated,
                                    path,
                                    greedy_hops,
                                    face_hops,
                                };
                            }
                        }
                    }
                }
            } else {
                // Continue the face traversal with the right-hand rule:
                // sweep CCW from the edge we arrived on.
                let prev = came_from.expect("face mode implies a predecessor");
                let angle_in = self.believed(current).bearing_to(self.believed(prev));
                match self.face_next(current, angle_in) {
                    Some(n) => {
                        face_hops += 1;
                        came_from = Some(current);
                        n
                    }
                    None => {
                        return RouteOutcome {
                            status: RouteStatus::Isolated,
                            path,
                            greedy_hops,
                            face_hops,
                        };
                    }
                }
            };
            path.push(next);
            current = next;
        }
        RouteOutcome {
            status: RouteStatus::HopLimit,
            path,
            greedy_hops,
            face_hops,
        }
    }
}

/// Summary statistics of routing many packets over one graph snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeliveryStats {
    /// Pairs attempted (only physically connected pairs are attempted).
    pub attempted: usize,
    /// Pairs delivered.
    pub delivered: usize,
    /// Mean hops over delivered packets.
    pub mean_hops: f64,
    /// Fraction of hops spent in face-recovery mode.
    pub face_fraction: f64,
    /// Mean path stretch over delivered packets: hops divided by the BFS
    /// optimum (1.0 = every packet took a shortest path).
    pub mean_stretch: f64,
}

impl DeliveryStats {
    /// Delivery rate in `[0, 1]`.
    pub fn delivery_rate(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            self.delivered as f64 / self.attempted as f64
        }
    }
}

/// Routes every `(src, dest)` pair in `pairs` (skipping physically
/// disconnected ones) and aggregates the outcome.
pub fn delivery_experiment(graph: &UnitDiskGraph, pairs: &[(usize, usize)]) -> DeliveryStats {
    let router = GeoRouter::new(graph);
    let mut attempted = 0;
    let mut delivered = 0;
    let mut hops = 0usize;
    let mut face = 0usize;
    let mut total_hops = 0usize;
    let mut stretch_sum = 0.0;
    let mut stretch_n = 0usize;
    for &(s, d) in pairs {
        if s == d {
            continue;
        }
        let Some(optimal) = graph.shortest_hops(s, d) else {
            continue;
        };
        attempted += 1;
        let out = router.route(s, d);
        total_hops += out.greedy_hops + out.face_hops;
        face += out.face_hops;
        if out.delivered() {
            delivered += 1;
            hops += out.hops();
            if optimal > 0 {
                stretch_sum += out.hops() as f64 / optimal as f64;
                stretch_n += 1;
            }
        }
    }
    DeliveryStats {
        attempted,
        delivered,
        mean_hops: if delivered == 0 {
            0.0
        } else {
            hops as f64 / delivered as f64
        },
        face_fraction: if total_hops == 0 {
            0.0
        } else {
            face as f64 / total_hops as f64
        },
        mean_stretch: if stretch_n == 0 {
            0.0
        } else {
            stretch_sum / stretch_n as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::RoutingNode;
    use cocoa_net::geometry::Point;
    use rand::Rng;

    fn grid_graph(n: usize, spacing: f64, range: f64) -> UnitDiskGraph {
        let mut nodes = Vec::new();
        for i in 0..n {
            for j in 0..n {
                nodes.push(RoutingNode::exact(Point::new(
                    i as f64 * spacing,
                    j as f64 * spacing,
                )));
            }
        }
        UnitDiskGraph::new(nodes, range)
    }

    #[test]
    fn greedy_delivers_on_dense_grid() {
        let g = grid_graph(6, 10.0, 15.0);
        let router = GeoRouter::new(&g);
        let out = router.route(0, 35);
        assert!(out.delivered(), "{out:?}");
        assert_eq!(out.face_hops, 0, "dense grid needs no recovery");
        assert!(out.hops() >= 5, "diagonal needs several hops");
    }

    #[test]
    fn face_recovery_crosses_a_void() {
        // A "U" shape: greedy from the left arm towards the right arm hits
        // a local minimum at the top of the arm; face routing goes around.
        let mut nodes = Vec::new();
        // Left arm going up.
        for i in 0..5 {
            nodes.push(RoutingNode::exact(Point::new(0.0, f64::from(i) * 10.0)));
        }
        // Bottom rail.
        for i in 1..6 {
            nodes.push(RoutingNode::exact(Point::new(f64::from(i) * 10.0, 0.0)));
        }
        // Right arm going up.
        for i in 1..5 {
            nodes.push(RoutingNode::exact(Point::new(50.0, f64::from(i) * 10.0)));
        }
        let g = UnitDiskGraph::new(nodes, 12.0);
        let router = GeoRouter::new(&g);
        // From top of the left arm (index 4) to top of the right arm.
        let dest = g.len() - 1;
        let out = router.route(4, dest);
        assert!(out.delivered(), "{out:?}");
        assert!(out.face_hops > 0, "must have used face recovery: {out:?}");
    }

    #[test]
    fn disconnected_pair_not_delivered() {
        let nodes = vec![
            RoutingNode::exact(Point::new(0.0, 0.0)),
            RoutingNode::exact(Point::new(1000.0, 0.0)),
        ];
        let g = UnitDiskGraph::new(nodes, 50.0);
        let router = GeoRouter::new(&g);
        let out = router.route(0, 1);
        assert!(!out.delivered());
    }

    #[test]
    fn self_route_is_trivially_delivered() {
        let g = grid_graph(2, 10.0, 15.0);
        let out = GeoRouter::new(&g).route(1, 1);
        assert!(out.delivered());
        assert_eq!(out.hops(), 0);
    }

    #[test]
    fn delivery_rate_degrades_with_position_error() {
        use cocoa_sim::dist::Normal;
        use cocoa_sim::rng::SeedSplitter;
        let mut rng = SeedSplitter::new(5).stream("geo", 0);
        let make = |sigma: f64, rng: &mut cocoa_sim::rng::DetRng| {
            let noise = Normal::new(0.0, sigma);
            let mut nodes = Vec::new();
            for _ in 0..120 {
                let p = Point::new(rng.gen::<f64>() * 200.0, rng.gen::<f64>() * 200.0);
                let believed = Point::new(p.x + noise.sample(rng), p.y + noise.sample(rng));
                nodes.push(RoutingNode {
                    true_position: p,
                    believed_position: believed,
                });
            }
            UnitDiskGraph::new(nodes, 35.0)
        };
        let pairs: Vec<(usize, usize)> = (0..60).map(|i| (i, 119 - i)).collect();
        let exact = delivery_experiment(&make(0.0, &mut rng), &pairs);
        let noisy = delivery_experiment(&make(30.0, &mut rng), &pairs);
        assert!(
            exact.delivery_rate() > 0.95,
            "exact rate {}",
            exact.delivery_rate()
        );
        assert!(
            noisy.delivery_rate() <= exact.delivery_rate(),
            "noise must not improve routing: {} vs {}",
            noisy.delivery_rate(),
            exact.delivery_rate()
        );
    }

    #[test]
    fn stats_handle_empty_input() {
        let g = grid_graph(2, 10.0, 15.0);
        let stats = delivery_experiment(&g, &[]);
        assert_eq!(stats.delivery_rate(), 0.0);
        assert_eq!(stats.mean_hops, 0.0);
    }
}

#[cfg(test)]
mod stretch_tests {
    use super::*;
    use crate::graph::RoutingNode;
    use cocoa_net::geometry::Point;

    #[test]
    fn stretch_is_one_on_a_line() {
        let nodes: Vec<RoutingNode> = (0..6)
            .map(|i| RoutingNode::exact(Point::new(f64::from(i) * 10.0, 0.0)))
            .collect();
        let g = UnitDiskGraph::new(nodes, 12.0);
        let stats = delivery_experiment(&g, &[(0, 5)]);
        assert_eq!(stats.delivered, 1);
        assert!(
            (stats.mean_stretch - 1.0).abs() < 1e-12,
            "line routes are optimal"
        );
    }

    #[test]
    fn detours_have_stretch_above_one() {
        // The "U" from the face-recovery test: greedy fails, face routing
        // detours around the void, so hops exceed the BFS optimum... which
        // here is also along the U, so build a shortcut for BFS only: a
        // dense grid with a believed-position distortion would be complex,
        // so assert the weaker invariant instead: stretch >= 1 always.
        let mut nodes = Vec::new();
        for i in 0..5 {
            nodes.push(RoutingNode::exact(Point::new(0.0, f64::from(i) * 10.0)));
        }
        for i in 1..6 {
            nodes.push(RoutingNode::exact(Point::new(f64::from(i) * 10.0, 0.0)));
        }
        for i in 1..5 {
            nodes.push(RoutingNode::exact(Point::new(50.0, f64::from(i) * 10.0)));
        }
        let g = UnitDiskGraph::new(nodes, 12.0);
        let stats = delivery_experiment(&g, &[(4, 13), (0, 13), (4, 9)]);
        assert!(stats.delivered > 0);
        assert!(
            stats.mean_stretch >= 1.0 - 1e-12,
            "stretch {}",
            stats.mean_stretch
        );
    }

    #[test]
    fn shortest_hops_matches_geometry() {
        let nodes: Vec<RoutingNode> = (0..5)
            .map(|i| RoutingNode::exact(Point::new(f64::from(i) * 10.0, 0.0)))
            .collect();
        let g = UnitDiskGraph::new(nodes, 25.0); // reach 2 hops per step
        assert_eq!(g.shortest_hops(0, 4), Some(2));
        assert_eq!(g.shortest_hops(0, 0), Some(0));
        assert_eq!(g.shortest_hops(0, 2), Some(1));
    }
}

#[cfg(test)]
mod greedy_only_tests {
    use super::*;
    use crate::graph::RoutingNode;
    use cocoa_net::geometry::Point;

    /// The "U" void again: greedy-only drops where GFG recovers.
    #[test]
    fn face_recovery_earns_its_keep() {
        let mut nodes = Vec::new();
        for i in 0..5 {
            nodes.push(RoutingNode::exact(Point::new(0.0, f64::from(i) * 10.0)));
        }
        for i in 1..6 {
            nodes.push(RoutingNode::exact(Point::new(f64::from(i) * 10.0, 0.0)));
        }
        for i in 1..5 {
            nodes.push(RoutingNode::exact(Point::new(50.0, f64::from(i) * 10.0)));
        }
        let g = UnitDiskGraph::new(nodes, 12.0);
        let dest = g.len() - 1;
        let gfg = GeoRouter::new(&g).route(4, dest);
        let greedy = GeoRouter::greedy_only(&g).route(4, dest);
        assert!(gfg.delivered());
        assert!(!greedy.delivered(), "greedy must drop at the void");
        assert_eq!(greedy.face_hops, 0);
    }

    #[test]
    fn greedy_only_still_works_on_dense_graphs() {
        let mut nodes = Vec::new();
        for i in 0..6 {
            for j in 0..6 {
                nodes.push(RoutingNode::exact(Point::new(
                    f64::from(i) * 10.0,
                    f64::from(j) * 10.0,
                )));
            }
        }
        let g = UnitDiskGraph::new(nodes, 15.0);
        let out = GeoRouter::greedy_only(&g).route(0, 35);
        assert!(out.delivered());
    }
}
