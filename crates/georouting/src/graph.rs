//! The routing substrate: a unit-disk connectivity graph whose *links* are
//! physical (true positions, radio range) but whose *coordinates* are the
//! robots' position estimates — exactly the situation a geographic routing
//! protocol running over CoCoA coordinates faces (paper Section 6: "CoCoA
//! coordinates are good enough to enable scalable geographic routing").

use serde::{Deserialize, Serialize};

use cocoa_net::geometry::Point;

/// A node of the routing graph.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoutingNode {
    /// Ground-truth position (determines radio connectivity).
    pub true_position: Point,
    /// The position the node believes it is at (used for all routing
    /// decisions). With perfect localization the two coincide.
    pub believed_position: Point,
}

impl RoutingNode {
    /// A node with perfect knowledge of its position.
    pub fn exact(p: Point) -> Self {
        RoutingNode {
            true_position: p,
            believed_position: p,
        }
    }

    /// This node's localization error, metres.
    pub fn position_error(&self) -> f64 {
        self.true_position.distance_to(self.believed_position)
    }
}

/// A unit-disk graph over [`RoutingNode`]s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnitDiskGraph {
    nodes: Vec<RoutingNode>,
    range: f64,
    adjacency: Vec<Vec<usize>>,
}

impl UnitDiskGraph {
    /// Builds the graph: `u ~ v` iff their **true** distance is at most
    /// `range`.
    ///
    /// # Panics
    ///
    /// Panics if `range` is not strictly positive.
    pub fn new(nodes: Vec<RoutingNode>, range: f64) -> Self {
        assert!(range > 0.0, "radio range must be positive");
        let n = nodes.len();
        let mut adjacency = vec![Vec::new(); n];
        for i in 0..n {
            for j in (i + 1)..n {
                if nodes[i].true_position.distance_to(nodes[j].true_position) <= range {
                    adjacency[i].push(j);
                    adjacency[j].push(i);
                }
            }
        }
        UnitDiskGraph {
            nodes,
            range,
            adjacency,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The radio range.
    pub fn range(&self) -> f64 {
        self.range
    }

    /// The node at `index`.
    pub fn node(&self, index: usize) -> &RoutingNode {
        &self.nodes[index]
    }

    /// Indices of `index`'s radio neighbours.
    pub fn neighbors(&self, index: usize) -> &[usize] {
        &self.adjacency[index]
    }

    /// Total number of (undirected) edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Whether `a` and `b` are connected in the physical graph —
    /// routing can only ever succeed for connected pairs.
    pub fn connected(&self, a: usize, b: usize) -> bool {
        self.shortest_hops(a, b).is_some()
    }

    /// The minimum hop count between `a` and `b` (BFS over the physical
    /// graph), or `None` if disconnected. This is the optimum any routing
    /// protocol could achieve; the ratio of a route's hops to it is the
    /// route's *stretch*.
    pub fn shortest_hops(&self, a: usize, b: usize) -> Option<usize> {
        if a == b {
            return Some(0);
        }
        let mut dist = vec![usize::MAX; self.nodes.len()];
        let mut queue = std::collections::VecDeque::from([a]);
        dist[a] = 0;
        while let Some(u) = queue.pop_front() {
            for &v in &self.adjacency[u] {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    if v == b {
                        return Some(dist[v]);
                    }
                    queue.push_back(v);
                }
            }
        }
        None
    }

    /// The Gabriel-graph planarization computed on **believed** positions:
    /// edge `(u, v)` survives iff no common-knowledge witness `w` lies
    /// inside the disk with diameter `uv`. Geographic face routing needs a
    /// (near-)planar subgraph; localization error makes the planarization
    /// imperfect, which is precisely the effect the CoCoA routing
    /// experiment measures.
    pub fn gabriel_adjacency(&self) -> Vec<Vec<usize>> {
        let n = self.nodes.len();
        let mut gabriel = vec![Vec::new(); n];
        for u in 0..n {
            'edges: for &v in &self.adjacency[u] {
                if v <= u {
                    continue;
                }
                let pu = self.nodes[u].believed_position;
                let pv = self.nodes[v].believed_position;
                let mid = pu.midpoint(pv);
                let radius_sq = pu.distance_sq_to(pv) / 4.0;
                // Witnesses must be neighbours of u (they must be within
                // radio range to be known about).
                for &w in &self.adjacency[u] {
                    if w != v && self.nodes[w].believed_position.distance_sq_to(mid) < radius_sq {
                        continue 'edges;
                    }
                }
                gabriel[u].push(v);
                gabriel[v].push(u);
            }
        }
        gabriel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_graph() -> UnitDiskGraph {
        let nodes = (0..5)
            .map(|i| RoutingNode::exact(Point::new(f64::from(i) * 10.0, 0.0)))
            .collect();
        UnitDiskGraph::new(nodes, 15.0)
    }

    #[test]
    fn adjacency_respects_range() {
        let g = line_graph();
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(2), &[1, 3]);
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn connectivity_bfs() {
        let g = line_graph();
        assert!(g.connected(0, 4));
        assert!(g.connected(2, 2));
        // Add an isolated node.
        let mut nodes: Vec<RoutingNode> = (0..3)
            .map(|i| RoutingNode::exact(Point::new(f64::from(i) * 10.0, 0.0)))
            .collect();
        nodes.push(RoutingNode::exact(Point::new(500.0, 500.0)));
        let g = UnitDiskGraph::new(nodes, 15.0);
        assert!(!g.connected(0, 3));
    }

    #[test]
    fn gabriel_removes_long_diagonals() {
        // An obtuse triangle: the witness (4,4) lies strictly inside the
        // disk with diameter (10,0)-(0,10), so Gabriel drops that edge.
        let nodes = vec![
            RoutingNode::exact(Point::new(4.0, 4.0)),
            RoutingNode::exact(Point::new(10.0, 0.0)),
            RoutingNode::exact(Point::new(0.0, 10.0)),
        ];
        let g = UnitDiskGraph::new(nodes, 20.0);
        assert_eq!(g.edge_count(), 3);
        let gabriel = g.gabriel_adjacency();
        // Edge 1-2 (the hypotenuse) must be gone; 0-1 and 0-2 survive.
        assert!(gabriel[0].contains(&1) && gabriel[0].contains(&2));
        assert!(!gabriel[1].contains(&2));
    }

    #[test]
    fn gabriel_keeps_line_edges() {
        let g = line_graph();
        let gabriel = g.gabriel_adjacency();
        for (i, adj) in gabriel.iter().enumerate().take(4) {
            assert!(adj.contains(&(i + 1)), "line edge {i} kept");
        }
    }

    #[test]
    fn position_error_measured() {
        let n = RoutingNode {
            true_position: Point::new(0.0, 0.0),
            believed_position: Point::new(3.0, 4.0),
        };
        assert_eq!(n.position_error(), 5.0);
        assert_eq!(RoutingNode::exact(Point::ORIGIN).position_error(), 0.0);
    }

    #[test]
    #[should_panic(expected = "range")]
    fn zero_range_rejected() {
        let _ = UnitDiskGraph::new(vec![], 0.0);
    }
}
