//! # cocoa-georouting — geographic routing over CoCoA coordinates
//!
//! The paper's conclusion motivates CoCoA's accuracy by what it enables:
//! "CoCoA coordinates are good enough to enable scalable geographic
//! routing \[23\] of messages and data among the robots". This crate
//! implements that application — GFG/GPSR-style greedy + face routing —
//! and the experiment that quantifies how delivery degrades with
//! localization error:
//!
//! - [`graph`]: unit-disk connectivity over true positions, coordinates
//!   from position *estimates*, Gabriel-graph planarization;
//! - [`route`]: greedy forwarding, right-hand-rule face recovery, and the
//!   delivery-rate experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod route;

/// Glob-import of the most commonly used types.
pub mod prelude {
    pub use crate::graph::{RoutingNode, UnitDiskGraph};
    pub use crate::route::{
        delivery_experiment, DeliveryStats, GeoRouter, RouteOutcome, RouteStatus,
    };
}
