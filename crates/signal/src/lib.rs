//! Minimal, dependency-free graceful-shutdown plumbing for long-running
//! CoCoA binaries (`cocoa-serve`, long sweeps).
//!
//! The rest of the workspace is `#![forbid(unsafe_code)]`; the one
//! operation that genuinely needs `unsafe` — registering a process
//! signal handler via `signal(2)` — is quarantined here behind a safe,
//! atomic-flag API. The handler itself only stores to an [`AtomicBool`]
//! (the canonical async-signal-safe action), and consumers poll
//! [`shutdown_requested`] from their accept/drain loops.
//!
//! On non-Unix targets [`install_shutdown_handler`] is a no-op: the
//! flag still works, but only [`request_shutdown`] (e.g. an admin
//! endpoint) can raise it.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    /// POSIX signal numbers (stable on every Unix Rust targets).
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        /// `signal(2)` from the platform libc, which std already links.
        /// Declared with a typed handler so no pointer casts are needed;
        /// the previous-handler return value is ignored.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only an atomic store: the one action that is unconditionally
        // async-signal-safe. Everything else (draining, persisting)
        // happens on the main thread when it next polls the flag.
        super::SHUTDOWN.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }
}

/// Registers SIGTERM/SIGINT handlers that raise the shutdown flag.
///
/// Idempotent; call once near the top of `main`. A no-op on non-Unix
/// targets.
pub fn install_shutdown_handler() {
    #[cfg(unix)]
    imp::install();
}

/// Whether a shutdown has been requested, by signal or by
/// [`request_shutdown`].
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Raises the shutdown flag programmatically — the path an admin
/// endpoint or a test uses instead of delivering a real signal.
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Lowers the flag again. Tests use this to isolate cases; a server
/// that wants "resume accepting after a cancelled drain" semantics may
/// too.
pub fn reset_shutdown() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_round_trips() {
        reset_shutdown();
        assert!(!shutdown_requested());
        request_shutdown();
        assert!(shutdown_requested());
        reset_shutdown();
        assert!(!shutdown_requested());
    }

    #[cfg(unix)]
    #[test]
    fn handler_installation_is_idempotent() {
        install_shutdown_handler();
        install_shutdown_handler();
    }
}
